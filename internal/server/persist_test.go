package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
)

func persistentService(t *testing.T, dir string, ckptEvery int) (*Server, *Client, *persist.RecoveryReport) {
	t.Helper()
	store, err := persist.Open(dir, persist.Options{SyncPolicy: persist.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, rep, err := NewPersistent(testRepo(t), core.Config{Alpha: 0.6}, store, ckptEvery)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client()), rep
}

// TestPersistentServerSurvivesRestart drives the full durability loop
// over HTTP: requests, an explicit /v1/checkpoint, more requests (WAL
// tail), then a "restart" into the same state directory.
func TestPersistentServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, client, rep := persistentService(t, dir, 0)
	if rep.RecordsReplayed != 0 || rep.CheckpointSeq != 0 {
		t.Fatalf("fresh directory produced a non-empty recovery: %+v", rep)
	}

	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	info, err := client.Checkpoint()
	if err != nil {
		t.Fatalf("POST /v1/checkpoint: %v", err)
	}
	if info.Images != 1 {
		t.Fatalf("checkpoint covered %d images, want 1", info.Images)
	}
	// Post-checkpoint mutations live only in the WAL tail.
	if _, err := client.Request([]string{"libB/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	before := srv.StatsNow()
	wantSnaps, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh store and server over the same directory.
	srv2, client2, rep2 := persistentService(t, dir, 0)
	if rep2.CheckpointSeq != info.Seq {
		t.Errorf("recovered from checkpoint %d, want %d", rep2.CheckpointSeq, info.Seq)
	}
	if rep2.RecordsReplayed == 0 {
		t.Error("post-checkpoint WAL tail was not replayed")
	}
	if got := srv2.StatsNow(); got != before {
		t.Errorf("stats after restart = %+v, want %+v", got, before)
	}
	gotSnaps, err := client2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSnaps, wantSnaps) {
		t.Errorf("snapshot after restart:\n got %+v\nwant %+v", gotSnaps, wantSnaps)
	}
}

// TestCheckpointEveryRequests: the server compacts automatically once
// the configured number of requests lands.
func TestCheckpointEveryRequests(t *testing.T) {
	dir := t.TempDir()
	srv, client, _ := persistentService(t, dir, 3)
	for i := 0; i < 3; i++ {
		if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
			t.Fatal(err)
		}
	}
	if since := srv.sinceCkpt.Load(); since != 0 {
		t.Fatalf("sinceCkpt = %d after threshold, want 0 (checkpoint ran)", since)
	}

	// The restart must need no WAL replay: everything is in the checkpoint.
	_, _, rep := persistentService(t, dir, 0)
	if rep.RecordsReplayed != 0 || rep.CheckpointImages != 1 {
		t.Errorf("recovery after auto-checkpoint replayed %d records (images %d), want a pure checkpoint load",
			rep.RecordsReplayed, rep.CheckpointImages)
	}
}

// TestRestoreTriggersCheckpoint: /v1/restore bypasses the WAL, so the
// server closes the durability hole with an immediate checkpoint.
func TestRestoreTriggersCheckpoint(t *testing.T) {
	dirA := t.TempDir()
	_, clientA, _ := persistentService(t, dirA, 0)
	if _, err := clientA.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	snaps, err := clientA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	dirB := t.TempDir()
	_, clientB, _ := persistentService(t, dirB, 0)
	if err := clientB.Restore(snaps); err != nil {
		t.Fatal(err)
	}

	// A restart of B recovers the restored images from its checkpoint.
	_, _, rep := persistentService(t, dirB, 0)
	if rep.CheckpointImages != len(snaps) {
		t.Errorf("restart after restore found %d checkpointed images, want %d", rep.CheckpointImages, len(snaps))
	}
}

// TestCheckpointWithoutStore: the endpoint reports 412 when the server
// has no durability configured.
func TestCheckpointWithoutStore(t *testing.T) {
	ts, _ := testService(t, core.Config{Alpha: 0.6})
	resp, err := http.Post(ts.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("status = %d, want 412", resp.StatusCode)
	}
}

// TestRecoveringHandler: the startup placeholder serves 503 with a
// Retry-After hint on every serving route, but liveness stays 200 —
// a daemon replaying its WAL is alive and must not be restarted.
func TestRecoveringHandler(t *testing.T) {
	ts := httptest.NewServer(RecoveringHandler())
	defer ts.Close()
	for _, path := range []string{"/v1/readyz", "/v1/request", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s: status = %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: no Retry-After header", path)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/v1/healthz: status = %d, want 200 (liveness holds through recovery)", resp.StatusCode)
	}
}

// TestClientRetriesDuringRecovery: a GET that first hits the
// recovering placeholder succeeds once the real handler takes over,
// with backoff sleeps instead of user-visible failures. Readiness is
// the route that 503s through recovery (liveness stays 200).
func TestClientRetriesDuringRecovery(t *testing.T) {
	recovering := RecoveringHandler()
	var fails int
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if fails < 2 {
			fails++
			recovering.ServeHTTP(w, r)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	var slept []time.Duration
	client.sleep = func(d time.Duration) { slept = append(slept, d) }
	client.SetJitter(func() float64 { return 1 }) // pin to the ceiling for the assertion
	if err := client.Ready(); err != nil {
		t.Fatalf("Ready with retries: %v", err)
	}
	// The placeholder's Retry-After: 1 floors the 100ms/200ms jittered
	// ceilings — the server named its recovery window, so the client
	// waits it out instead of probing inside it.
	want := []time.Duration{time.Second, time.Second}
	if !reflect.DeepEqual(slept, want) {
		t.Errorf("backoff sleeps = %v, want %v", slept, want)
	}
}

// TestClientDoesNotRetryPosts: mutating requests must reach the
// service at most once per call.
func TestClientDoesNotRetryPosts(t *testing.T) {
	var posts int
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/prune", func(w http.ResponseWriter, r *http.Request) {
		posts++
		writeError(w, http.StatusServiceUnavailable, "recovering")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	client.sleep = func(time.Duration) { t.Error("POST slept for a retry") }
	if _, err := client.Prune(0.5, 1); err == nil {
		t.Fatal("expected error from 503")
	}
	if posts != 1 {
		t.Fatalf("POST attempted %d times, want 1", posts)
	}
}

// TestClientBackoffCap: the exponential backoff saturates at RetryCap.
func TestClientBackoffCap(t *testing.T) {
	c := NewClient("http://example.invalid", nil)
	c.RetryBase = 100 * time.Millisecond
	c.RetryCap = 300 * time.Millisecond
	want := []time.Duration{100, 200, 300, 300}
	for i, w := range want {
		if got := c.backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

// TestClientRetriesExhaust: a persistently-503 server exhausts
// MaxRetries and surfaces the final error.
func TestClientRetriesExhaust(t *testing.T) {
	var gets int
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		gets++
		writeError(w, http.StatusServiceUnavailable, "still recovering")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	client.MaxRetries = 2
	client.sleep = func(time.Duration) {}
	if _, err := client.Stats(); err == nil {
		t.Fatal("expected error after retries exhausted")
	}
	if gets != 3 {
		t.Fatalf("GET attempted %d times, want 3 (1 + 2 retries)", gets)
	}
}
