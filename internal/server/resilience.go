package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// DeadlineHeader carries the client's absolute request deadline as
// unix nanoseconds. The server turns it into a context deadline, so
// work whose client has already given up aborts before touching the
// cache instead of burning the write lock on an answer nobody reads.
const DeadlineHeader = "X-Landlord-Deadline"

// DegradedHeader marks responses served in degraded (read-only) mode,
// so clients and tests can tell a degraded hit from a healthy one.
const DegradedHeader = "X-Landlord-Degraded"

// EpochHeader carries the fleet lease epoch. A master stamps it on
// forwarded requests and on its own responses; agents use it to reject
// forwards from a demoted primary, and clients use it to tell which
// master term answered during a failover window.
const EpochHeader = "X-Landlord-Epoch"

// MasterHeader names the lease holder (master ID) that stamped
// EpochHeader, so an agent can detect two masters claiming the same
// epoch — the dual-primary signal the HA harness audits.
const MasterHeader = "X-Landlord-Master"

// ServeState is the server's overload/failure position, exported by
// the landlord_serve_state gauge and the state:* events in /v1/events.
type ServeState int32

const (
	// StateHealthy: full service.
	StateHealthy ServeState = iota
	// StateShedding: healthy durability, but admission control is
	// actively refusing load (429s are being served).
	StateShedding
	// StateDegraded: the WAL is failing; the server is read-only —
	// superset hits on untainted images and stats still work, anything
	// needing a durable mutation is refused with 503.
	StateDegraded
	// StateRecovering: a heal probe is in flight; still read-only.
	StateRecovering
)

// String renders the state for events and logs.
func (st ServeState) String() string {
	switch st {
	case StateShedding:
		return "shedding"
	case StateDegraded:
		return "degraded"
	case StateRecovering:
		return "recovering"
	default:
		return "healthy"
	}
}

// health is the server's serve-state machine. Transitions are driven
// by admission decisions (healthy↔shedding), WAL failures
// (→degraded), and the probe loop (degraded→recovering→healthy).
// Degraded-or-worse always wins over shedding: a shed decision never
// masks a durability failure.
type health struct {
	mu          sync.Mutex
	state       ServeState
	transitions int64
}

func (h *health) get() ServeState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// set moves to next and reports whether that was a change.
func (h *health) set(next ServeState) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == next {
		return false
	}
	h.state = next
	h.transitions++
	return true
}

// setIf moves from -> to atomically; other states are left alone.
func (h *health) setIf(from, to ServeState) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != from {
		return false
	}
	h.state = to
	h.transitions++
	return true
}

func (h *health) count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.transitions
}

// SetAdmission installs server-side admission control: requests are
// refused with 429 + Retry-After before they queue on the inflight
// semaphore, so a saturated server stays responsive instead of
// stacking goroutines until max_inflight back-pressure turns into
// client timeouts. Call before serving.
func (s *Server) SetAdmission(cfg resilience.ShedderConfig) {
	s.shedder = resilience.NewShedder(cfg)
	s.reg.GaugeFunc("landlord_shed_requests_total",
		"Requests refused by admission control, by reason", func() float64 {
			_, rate, queue := s.shedder.Counters()
			return float64(rate + queue)
		})
	s.reg.GaugeFunc("landlord_admitted_inflight",
		"Admitted requests not yet finished (bounded by shed_queue_depth)",
		func() float64 { return float64(s.shedder.Inflight()) })
}

// registerResilienceMetrics exposes the serve-state machine. Called
// from both constructors.
func (s *Server) registerResilienceMetrics() {
	s.reg.GaugeFunc("landlord_serve_state",
		"Serve state: 0 healthy, 1 shedding, 2 degraded, 3 recovering",
		func() float64 { return float64(s.health.get()) })
	s.reg.GaugeFunc("landlord_serve_state_transitions_total",
		"Serve-state machine transitions",
		func() float64 { return float64(s.health.count()) })
}

// ServeStateNow returns the current serve state (for the daemon's logs
// and tests).
func (s *Server) ServeStateNow() ServeState { return s.health.get() }

// transition moves the state machine and emits a synthetic state:*
// event into the /v1/events ring when the state actually changed.
func (s *Server) transition(next ServeState) {
	if s.health.set(next) {
		s.noteStateEvent(next)
	}
}

// noteStateEvent pushes a synthetic "state:<name>" event into the
// /v1/events ring, so operators replaying an incident see overload
// transitions inline with the request stream they shaped.
func (s *Server) noteStateEvent(next ServeState) {
	s.ring.Trace(&telemetry.Event{Op: "state:" + next.String()})
}

// noteShed records a shed decision: healthy flips to shedding (but a
// degraded server stays degraded — durability loss dominates).
func (s *Server) noteShed() {
	if s.health.setIf(StateHealthy, StateShedding) {
		s.noteStateEvent(StateShedding)
	}
}

// noteAdmit records a successful admission: shedding relaxes back to
// healthy.
func (s *Server) noteAdmit() {
	if s.health.setIf(StateShedding, StateHealthy) {
		s.noteStateEvent(StateHealthy)
	}
}

// noteDegraded flips to degraded from any state.
func (s *Server) noteDegraded() {
	st := s.health.get()
	if st != StateDegraded && st != StateRecovering {
		s.transition(StateDegraded)
	}
}

// Ready reports whether the server is serving at full capability:
// false while degraded or healing. Shedding still counts as ready —
// the server is refusing load by policy, not failing.
func (s *Server) Ready() bool {
	st := s.health.get()
	return st == StateHealthy || st == StateShedding
}

// handleReadyz is GET /v1/readyz: readiness. 503 while the server is
// degraded or mid-heal, 200 otherwise. Liveness (/v1/healthz) stays
// 200 through both — the process is alive and should not be restarted,
// it just should not receive fresh traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.health.get()
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "state": st.String()})
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready", "state": st.String()})
}

// requestContext derives the handler context from the propagated
// deadline header, if any. Malformed values are ignored — a client bug
// should not turn into a dropped request.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if v := r.Header.Get(DeadlineHeader); v != "" {
		if ns, err := strconv.ParseInt(v, 10, 64); err == nil && ns > 0 {
			return context.WithDeadline(r.Context(), time.Unix(0, ns))
		}
	}
	return r.Context(), func() {}
}

// StartDegradedProbe runs the self-healing loop: every interval, if
// the store has a sticky error, attempt Store.Heal under the exclusive
// lock. Returns a stop function (idempotent). interval <= 0 disables
// probing.
func (s *Server) StartDegradedProbe(interval time.Duration) (stop func()) {
	if s.store == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.ProbeDegradedNow()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// ProbeDegradedNow runs one heal probe if the store is failing,
// returning the store's health afterwards (nil = healthy). Safe to
// call at any time; a healthy store is a no-op.
func (s *Server) ProbeDegradedNow() error {
	if s.store == nil {
		return nil
	}
	if err := s.store.Err(); err == nil {
		return nil
	}
	s.transition(StateRecovering)
	var healErr error
	s.cmgr.WithExclusiveAll(func(ms []*core.Manager) {
		healErr = s.store.Heal(core.MergedState(ms))
	})
	if healErr != nil {
		s.transition(StateDegraded)
		return healErr
	}
	s.transition(StateHealthy)
	return nil
}
