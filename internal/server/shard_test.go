package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
)

// shardSpecs are the five distinct dependency closures the test repo
// offers; with alpha 0 nothing merges, so each inserts its own image
// and the router scatters them across shards.
var shardSpecs = [][]string{
	{"base/1.0/p"},
	{"fw/1.0/p"},
	{"libA/1.0/p"},
	{"libB/1.0/p"},
	{"libA/1.0/p", "libB/1.0/p"},
}

// TestShardedServerEndToEnd drives the HTTP API with cache_shards=4:
// inserts and repeat hits behave exactly as on the unsharded server,
// /v1/stats aggregates across shards, /v1/images lists the merged
// image set in stable ID order, and /metrics exposes the per-shard
// gauges plus the balancer counters.
func TestShardedServerEndToEnd(t *testing.T) {
	ts, client := testService(t, core.Config{Alpha: 0, Shards: 4})

	for _, pkgs := range shardSpecs {
		res, err := client.Request(pkgs, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Op != "insert" {
			t.Fatalf("first request of %v: op %q, want insert", pkgs, res.Op)
		}
	}
	// A repeat routes to the same shard its insert landed on, so the
	// image is there to hit.
	for _, pkgs := range shardSpecs {
		res, err := client.Request(pkgs, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Op != "hit" {
			t.Fatalf("repeat of %v: op %q, want hit", pkgs, res.Op)
		}
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 10 || st.Inserts != 5 || st.Hits != 5 || st.Images != 5 {
		t.Fatalf("merged stats wrong: %+v", st)
	}

	imgs, err := client.Images()
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 5 {
		t.Fatalf("%d images listed, want 5", len(imgs))
	}
	for i := 1; i < len(imgs); i++ {
		if imgs[i-1].ID >= imgs[i].ID {
			t.Fatalf("image listing not ID-ordered: %d before %d", imgs[i-1].ID, imgs[i].ID)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`landlord_cache_shard_images{shard="0"}`,
		`landlord_cache_shard_images{shard="3"}`,
		`landlord_cache_shard_bytes{shard="1"}`,
		`landlord_cache_shard_budget_bytes{shard="2"}`,
		"landlord_cache_rebalances_total",
		"landlord_cache_rebalance_evicted_bytes_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// TestShardedServerPersistence restarts a sharded persistent server
// and requires the recovered cache to serve every pre-restart spec as
// a hit with identical aggregate state — the merged checkpoint/WAL
// round-trip through the server's own checkpoint path.
func TestShardedServerPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{Alpha: 0, Shards: 3}
	open := func() (*Server, *persist.Store) {
		store, err := persist.Open(dir, persist.Options{SyncPolicy: persist.FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		srv, _, err := NewPersistent(testRepo(t), cfg, store, 0)
		if err != nil {
			t.Fatal(err)
		}
		return srv, store
	}

	keys := []string{"base/1.0/p", "fw/1.0/p", "libA/1.0/p", "libB/1.0/p"}
	srv, store := open()
	repo := testRepo(t)
	for _, key := range keys {
		if _, err := srv.cmgr.Request(mustSpec(t, repo, key)); err != nil {
			t.Fatal(err)
		}
	}
	before := srv.StatsNow()
	if _, err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, store2 := open()
	defer store2.Close()
	after := srv2.StatsNow()
	if after.Images != before.Images || after.TotalData != before.TotalData {
		t.Fatalf("recovered state %+v, want images=%d total=%d", after, before.Images, before.TotalData)
	}
	for _, key := range keys {
		res, err := srv2.cmgr.Request(mustSpec(t, repo, key))
		if err != nil {
			t.Fatal(err)
		}
		if res.Op != core.OpHit {
			t.Fatalf("recovered cache missed %q: %v", key, res.Op)
		}
	}
}
