package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// TestClientSurfacesRetryAfterAndEpoch: a master-forwarded 429/503
// carries Retry-After and the lease epoch; both land on the
// StatusError so callers can dispatch on them.
func TestClientSurfacesRetryAfterAndEpoch(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/request", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.Header().Set(EpochHeader, "7")
		writeError(w, http.StatusTooManyRequests, "overloaded")
	})
	mux.HandleFunc("/v1/prune", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.Header().Set(EpochHeader, "9")
		writeError(w, http.StatusServiceUnavailable, "not primary")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	client.MaxRetries = 0
	_, err := client.Request([]string{"a"}, true)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want StatusError, got %v", err)
	}
	if se.Status != http.StatusTooManyRequests || se.RetryAfter != 2*time.Second || se.Epoch != 7 {
		t.Errorf("429: status=%d retryAfter=%v epoch=%d, want 429/2s/7", se.Status, se.RetryAfter, se.Epoch)
	}
	_, err = client.Prune(0.5, 1)
	if !errors.As(err, &se) {
		t.Fatalf("want StatusError, got %v", err)
	}
	if se.Status != http.StatusServiceUnavailable || se.RetryAfter != 5*time.Second || se.Epoch != 9 {
		t.Errorf("503: status=%d retryAfter=%v epoch=%d, want 503/5s/9", se.Status, se.RetryAfter, se.Epoch)
	}
}

// TestClientRetryAfterFloorsBackoff (fake clock, no real sleeps): the
// server's Retry-After wins over a shorter jittered backoff, and
// loses to a longer one — the floor never shortens a wait.
func TestClientRetryAfterFloorsBackoff(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "3")
			w.Header().Set(EpochHeader, "4")
			writeError(w, http.StatusServiceUnavailable, "failover in progress")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	var slept []time.Duration
	client.sleep = func(d time.Duration) { slept = append(slept, d) }
	client.SetJitter(func() float64 { return 1 }) // pin to the ceiling
	if err := client.Ready(); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	// Jittered ceilings would be 100ms and 200ms; the 3s hint floors
	// both.
	if want := []time.Duration{3 * time.Second, 3 * time.Second}; !reflect.DeepEqual(slept, want) {
		t.Errorf("floored sleeps = %v, want %v", slept, want)
	}

	// A backoff already longer than the hint is unchanged.
	calls, slept = 0, nil
	client.RetryBase = 10 * time.Second
	client.RetryCap = 20 * time.Second
	if err := client.Ready(); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if want := []time.Duration{10 * time.Second, 20 * time.Second}; !reflect.DeepEqual(slept, want) {
		t.Errorf("unfloored sleeps = %v, want %v", slept, want)
	}
}
