package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/resilience"
)

// fakeClock is a manually advanced time source for shedder/breaker
// tests: no real sleeps, fully deterministic refill and cool-down.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// resilientService builds a server the test can reach into (shedder,
// serve state) alongside its HTTP face.
func resilientService(t testing.TB, cfg core.Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(testRepo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postRequest(t testing.TB, url string, body RequestBody) *http.Response {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url+"/v1/request", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestAdmissionControlShedsByRate: once the token bucket drains, the
// server answers 429 + Retry-After before doing any cache work — shed
// requests never partially mutate state.
func TestAdmissionControlShedsByRate(t *testing.T) {
	clk := newFakeClock()
	srv, ts := resilientService(t, core.Config{Alpha: 0.6})
	srv.SetAdmission(resilience.ShedderConfig{Rate: 1, Burst: 2, Now: clk.Now})

	body := RequestBody{Packages: []string{"libA/1.0/p"}, Close: true}
	for i := 0; i < 2; i++ {
		if resp := postRequest(t, ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("admitted request %d: status %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < 3; i++ {
		resp := postRequest(t, ts.URL, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("post-burst request %d: status %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("shed response has no Retry-After")
		}
	}
	if st := srv.StatsNow(); st.Requests != 2 {
		t.Errorf("stats.Requests = %d after sheds, want 2 (shed requests must not touch the cache)", st.Requests)
	}
	if got := srv.ServeStateNow(); got != StateShedding {
		t.Errorf("serve state = %v while shedding, want shedding", got)
	}

	// Refill one token: the next request is admitted and the state
	// relaxes back to healthy.
	clk.Advance(time.Second)
	if resp := postRequest(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill request: status %d", resp.StatusCode)
	}
	if got := srv.ServeStateNow(); got != StateHealthy {
		t.Errorf("serve state = %v after re-admission, want healthy", got)
	}
	if _, rate, _ := srv.shedder.Counters(); rate != 3 {
		t.Errorf("rate-shed counter = %d, want 3", rate)
	}
}

// gatedReader blocks the request body until the gate closes, pinning
// the request inside the handler (it holds its admission slot while
// the server waits on decode).
type gatedReader struct {
	gate <-chan struct{}
	data io.Reader
}

func (g *gatedReader) Read(p []byte) (int, error) {
	<-g.gate
	return g.data.Read(p)
}

// TestAdmissionControlShedsByQueueDepth: with one admitted request
// parked in the handler, queue-depth 1 refuses the second before it
// can pile onto the inflight semaphore.
func TestAdmissionControlShedsByQueueDepth(t *testing.T) {
	srv, ts := resilientService(t, core.Config{Alpha: 0.6})
	srv.SetAdmission(resilience.ShedderConfig{QueueDepth: 1})

	gate := make(chan struct{})
	firstDone := make(chan error, 1)
	go func() {
		data, _ := json.Marshal(RequestBody{Packages: []string{"libA/1.0/p"}, Close: true})
		resp, err := http.Post(ts.URL+"/v1/request", "application/json",
			&gatedReader{gate: gate, data: bytes.NewReader(data)})
		if err == nil {
			if resp.StatusCode != http.StatusOK {
				err = errors.New(resp.Status)
			}
			resp.Body.Close()
		}
		firstDone <- err
	}()

	// Wait for the first request to be admitted (it is now blocked
	// reading its own body, holding the only queue slot).
	deadline := time.Now().Add(5 * time.Second)
	for srv.shedder.Inflight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postRequest(t, ts.URL, RequestBody{Packages: []string{"libB/1.0/p"}, Close: true})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 (queue full)", resp.StatusCode)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	if !strings.Contains(eb.Error, "queue") {
		t.Errorf("shed reason = %q, want queue", eb.Error)
	}

	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("parked request failed after release: %v", err)
	}
	if n := srv.shedder.Inflight(); n != 0 {
		t.Errorf("inflight = %d after completion, want 0", n)
	}
}

// TestDeadlinePropagationExpired: a request whose propagated deadline
// has already passed is answered 504 without touching the cache.
func TestDeadlinePropagationExpired(t *testing.T) {
	srv, ts := resilientService(t, core.Config{Alpha: 0.6})

	data, _ := json.Marshal(RequestBody{Packages: []string{"libA/1.0/p"}, Close: true})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/request", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "1") // 1ns past the epoch: long expired
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline request: status %d, want 504", resp.StatusCode)
	}
	if st := srv.StatsNow(); st.Requests != 0 {
		t.Errorf("stats.Requests = %d, want 0 (expired request must not mutate)", st.Requests)
	}

	// A malformed deadline is ignored, not fatal.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/request", bytes.NewReader(data))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(DeadlineHeader, "not-a-number")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("malformed-deadline request: status %d, want 200", resp2.StatusCode)
	}
}

// TestClientPropagatesDeadline: RequestCtx forwards the context
// deadline in the X-Landlord-Deadline header.
func TestClientPropagatesDeadline(t *testing.T) {
	var got atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/request", func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(DeadlineHeader))
		writeJSON(w, http.StatusOK, RequestResponse{Op: "hit"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Minute))
	defer cancel()
	if _, err := client.RequestCtx(ctx, []string{"x"}, true); err != nil {
		t.Fatal(err)
	}
	hdr, _ := got.Load().(string)
	if hdr == "" {
		t.Fatal("no deadline header propagated")
	}
}

// TestReadyzHealthy: a fresh server is ready and reports its state.
func TestReadyzHealthy(t *testing.T) {
	_, ts := resilientService(t, core.Config{Alpha: 0.6})
	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz on healthy server: status %d", resp.StatusCode)
	}
	var body map[string]string
	json.NewDecoder(resp.Body).Decode(&body)
	if body["state"] != "healthy" {
		t.Errorf("readyz state = %q, want healthy", body["state"])
	}
}

// errToggled is the failure injected by toggleFS.
var errToggled = errors.New("injected: disk unplugged")

// toggleFS wraps a persist.FS; while tripped, every file write and
// fsync fails. Unlike check.FaultFS's one-shot op counts, the toggle
// models a sustained outage that later clears — the degraded-mode
// lifecycle.
type toggleFS struct {
	inner persist.FS
	fail  atomic.Bool
}

func (t *toggleFS) wrap(f persist.File, err error) (persist.File, error) {
	if err != nil {
		return nil, err
	}
	return &toggleFile{File: f, fs: t}, nil
}

func (t *toggleFS) MkdirAll(path string, perm os.FileMode) error { return t.inner.MkdirAll(path, perm) }
func (t *toggleFS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	return t.wrap(t.inner.OpenFile(name, flag, perm))
}
func (t *toggleFS) Open(name string) (persist.File, error) { return t.inner.Open(name) }
func (t *toggleFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return t.inner.ReadDir(name)
}
func (t *toggleFS) Remove(name string) error              { return t.inner.Remove(name) }
func (t *toggleFS) Rename(oldpath, newpath string) error  { return t.inner.Rename(oldpath, newpath) }
func (t *toggleFS) Stat(name string) (fs.FileInfo, error) { return t.inner.Stat(name) }
func (t *toggleFS) CreateTemp(dir, pattern string) (persist.File, error) {
	return t.wrap(t.inner.CreateTemp(dir, pattern))
}

type toggleFile struct {
	persist.File
	fs *toggleFS
}

func (f *toggleFile) Write(p []byte) (int, error) {
	if f.fs.fail.Load() {
		return 0, errToggled
	}
	return f.File.Write(p)
}

func (f *toggleFile) Sync() error {
	if f.fs.fail.Load() {
		return errToggled
	}
	return f.File.Sync()
}

// TestDegradedModeLifecycle drives the whole overload/failure arc over
// HTTP: healthy service, sustained WAL failure, read-only degraded
// serving (untainted hits OK, mutations and tainted hits 503), a
// failed heal probe, a successful heal, and full recovery — with the
// serve-state transitions visible in /v1/events.
func TestDegradedModeLifecycle(t *testing.T) {
	tfs := &toggleFS{inner: persist.OSFS{}}
	store, err := persist.Open(t.TempDir(), persist.Options{SyncPolicy: persist.FsyncAlways, FS: tfs})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Alpha 0: distinct specs insert rather than merge, so the
	// pre-failure image stays untainted by failed mutations.
	srv, _, err := NewPersistent(testRepo(t), core.Config{Alpha: 0}, store, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	libA := RequestBody{Packages: []string{"libA/1.0/p"}, Close: true}
	libB := RequestBody{Packages: []string{"libB/1.0/p"}, Close: true}

	// Healthy: libA inserts durably.
	if resp := postRequest(t, ts.URL, libA); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy insert: status %d", resp.StatusCode)
	}

	// Disk dies. The libB insert reaches memory but its WAL record is
	// lost: the server must refuse to ack it.
	tfs.fail.Store(true)
	resp := postRequest(t, ts.URL, libB)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert during outage: status %d, want 503", resp.StatusCode)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	if !strings.Contains(eb.Error, "durability lost") {
		t.Errorf("outage error = %q, want durability-lost", eb.Error)
	}
	if got := srv.ServeStateNow(); got != StateDegraded {
		t.Fatalf("serve state = %v after WAL failure, want degraded", got)
	}

	// Readiness fails, liveness holds.
	readyz, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyz.Body.Close()
	if readyz.StatusCode != http.StatusServiceUnavailable || readyz.Header.Get("Retry-After") == "" {
		t.Errorf("degraded readyz: status %d (Retry-After %q), want 503 with hint",
			readyz.StatusCode, readyz.Header.Get("Retry-After"))
	}
	healthz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthz.Body.Close()
	if healthz.StatusCode != http.StatusOK {
		t.Errorf("degraded healthz: status %d, want 200 (liveness)", healthz.StatusCode)
	}

	// Degraded read-only serving: the durable libA image still answers,
	// marked as degraded; the tainted libB image is refused.
	hit := postRequest(t, ts.URL, libA)
	if hit.StatusCode != http.StatusOK || hit.Header.Get(DegradedHeader) != "1" {
		t.Fatalf("degraded hit: status %d, degraded header %q; want 200 + header",
			hit.StatusCode, hit.Header.Get(DegradedHeader))
	}
	var hitRes RequestResponse
	json.NewDecoder(hit.Body).Decode(&hitRes)
	if hitRes.Op != "hit" {
		t.Errorf("degraded op = %q, want hit", hitRes.Op)
	}
	tainted := postRequest(t, ts.URL, libB)
	if tainted.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("tainted-image request: status %d, want 503 (its WAL record is gone)", tainted.StatusCode)
	}
	// Stats (read-only) keep serving through the outage.
	stats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats.Body.Close()
	if stats.StatusCode != http.StatusOK {
		t.Errorf("degraded stats: status %d, want 200", stats.StatusCode)
	}

	// A probe while the disk is still dead fails and re-enters degraded.
	if err := srv.ProbeDegradedNow(); err == nil {
		t.Fatal("heal probe succeeded against a dead disk")
	}
	if got := srv.ServeStateNow(); got != StateDegraded {
		t.Errorf("serve state after failed probe = %v, want degraded", got)
	}

	// Disk returns: the probe heals, taint clears, service resumes.
	tfs.fail.Store(false)
	if err := srv.ProbeDegradedNow(); err != nil {
		t.Fatalf("heal probe after recovery: %v", err)
	}
	if got := srv.ServeStateNow(); got != StateHealthy {
		t.Fatalf("serve state after heal = %v, want healthy", got)
	}
	readyz2, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyz2.Body.Close()
	if readyz2.StatusCode != http.StatusOK {
		t.Errorf("post-heal readyz: status %d, want 200", readyz2.StatusCode)
	}
	healed := postRequest(t, ts.URL, libB)
	if healed.StatusCode != http.StatusOK || healed.Header.Get(DegradedHeader) != "" {
		t.Fatalf("post-heal request: status %d (degraded header %q), want clean 200",
			healed.StatusCode, healed.Header.Get(DegradedHeader))
	}
	var healedRes RequestResponse
	json.NewDecoder(healed.Body).Decode(&healedRes)
	if healedRes.Op != "hit" {
		t.Errorf("post-heal op = %q, want hit (memory preserved and re-persisted by the heal)", healedRes.Op)
	}

	// The transitions are on the event stream, in order.
	client := NewClient(ts.URL, ts.Client())
	events, err := client.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	for _, ev := range events {
		if strings.HasPrefix(ev.Op, "state:") {
			states = append(states, strings.TrimPrefix(ev.Op, "state:"))
		}
	}
	want := []string{"degraded", "recovering", "degraded", "recovering", "healthy"}
	if len(states) != len(want) {
		t.Fatalf("state events = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state events = %v, want %v", states, want)
		}
	}
}

// TestStartDegradedProbeHeals: the background probe loop heals a
// degraded store without operator action.
func TestStartDegradedProbeHeals(t *testing.T) {
	tfs := &toggleFS{inner: persist.OSFS{}}
	store, err := persist.Open(t.TempDir(), persist.Options{SyncPolicy: persist.FsyncAlways, FS: tfs})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, _, err := NewPersistent(testRepo(t), core.Config{Alpha: 0}, store, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tfs.fail.Store(true)
	postRequest(t, ts.URL, RequestBody{Packages: []string{"libA/1.0/p"}, Close: true})
	if srv.ServeStateNow() != StateDegraded {
		t.Fatal("server did not degrade")
	}
	tfs.fail.Store(false)

	stop := srv.StartDegradedProbe(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ServeStateNow() != StateHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("probe loop never healed; state = %v", srv.ServeStateNow())
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if err := store.Err(); err != nil {
		t.Fatalf("store still failing after heal: %v", err)
	}
}

// scriptedHandler serves a fixed sequence of behaviours, then a
// terminal one, counting how many requests actually reached it.
type scriptedHandler struct {
	mu     sync.Mutex
	script []int // status codes; -1 = reset the connection
	seen   int
}

func (h *scriptedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	step := http.StatusOK
	if h.seen < len(h.script) {
		step = h.script[h.seen]
	}
	h.seen++
	h.mu.Unlock()
	switch {
	case step == -1:
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server cannot hijack")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close() // mid-exchange connection reset
	case step != http.StatusOK:
		writeError(w, step, "scripted failure")
	default:
		writeJSON(w, http.StatusOK, StatsResponse{Requests: 7})
	}
}

func (h *scriptedHandler) requests() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seen
}

// quietClient stubs out real sleeping and pins jitter for
// deterministic schedules.
func quietClient(t testing.TB, ts *httptest.Server) *Client {
	t.Helper()
	client := NewClient(ts.URL, ts.Client())
	client.sleep = func(time.Duration) {}
	client.SetJitter(func() float64 { return 1 })
	return client
}

// TestClientRecoversFromConnectionReset: a GET whose first exchange
// dies mid-connection retries and succeeds.
func TestClientRecoversFromConnectionReset(t *testing.T) {
	h := &scriptedHandler{script: []int{-1}}
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := quietClient(t, ts)
	out, err := client.Stats()
	if err != nil {
		t.Fatalf("GET through a reset: %v", err)
	}
	if out.Requests != 7 {
		t.Errorf("decoded %+v, want the scripted payload", out)
	}
	if h.requests() != 2 {
		t.Errorf("server saw %d requests, want 2 (reset + retry)", h.requests())
	}
}

// TestClientRetryBudgetExhausted: a brown-out stops burning retries
// once the budget drains, surfacing the underlying error.
func TestClientRetryBudgetExhausted(t *testing.T) {
	h := &scriptedHandler{script: []int{503, 503, 503, 503, 503, 503}}
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := quietClient(t, ts)
	client.SetRetryBudget(resilience.NewRetryBudget(0.1, 1))
	_, err := client.Stats()
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Errorf("error = %v, want budget exhaustion", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Errorf("exhaustion error does not wrap the last 503: %v", err)
	}
	// Budget 1 allows exactly one retry: initial + 1.
	if h.requests() != 2 {
		t.Errorf("server saw %d requests, want 2", h.requests())
	}
}

// TestClientBreakerLifecycle: consecutive failures open the circuit
// (fail fast, zero server contact), the cool-down admits a single
// probe, a failed probe re-opens, a successful probe closes.
func TestClientBreakerLifecycle(t *testing.T) {
	h := &scriptedHandler{script: []int{503, 503, 503}} // 2 to trip, 1 failed probe, then 200s
	ts := httptest.NewServer(h)
	defer ts.Close()

	clk := newFakeClock()
	client := quietClient(t, ts)
	client.MaxRetries = 0 // isolate the breaker from retry behaviour
	client.SetRetryBudget(nil)
	client.SetBreaker(resilience.NewBreaker(resilience.BreakerConfig{
		Failures: 2, OpenFor: time.Second, Now: clk.Now,
	}))

	// Two failures trip the circuit.
	for i := 0; i < 2; i++ {
		if _, err := client.Stats(); err == nil {
			t.Fatalf("scripted failure %d did not surface", i)
		}
	}
	if st := client.Breaker().State(); st != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v after trip, want open", st)
	}

	// Inside the cool-down: fail fast, the server is not contacted.
	before := h.requests()
	_, err := client.Stats()
	if !IsCircuitOpen(err) {
		t.Fatalf("in-cool-down error = %v, want circuit open", err)
	}
	if h.requests() != before {
		t.Errorf("open circuit leaked a request to the server")
	}

	// Past the cool-down the next call is the probe; it is scripted to
	// fail, so the circuit re-opens and fails fast again.
	clk.Advance(time.Second + time.Millisecond)
	if _, err := client.Stats(); err == nil {
		t.Fatal("failed probe did not surface")
	}
	if h.requests() != before+1 {
		t.Fatalf("probe did not reach the server exactly once: %d -> %d", before, h.requests())
	}
	if _, err := client.Stats(); !IsCircuitOpen(err) {
		t.Fatalf("post-failed-probe error = %v, want circuit open", err)
	}

	// The server recovers; the next probe closes the circuit for good.
	clk.Advance(time.Second + time.Millisecond)
	if _, err := client.Stats(); err != nil {
		t.Fatalf("successful probe: %v", err)
	}
	if st := client.Breaker().State(); st != resilience.BreakerClosed {
		t.Fatalf("breaker state = %v after successful probe, want closed", st)
	}
	if opens := client.Breaker().Opens(); opens != 2 {
		t.Errorf("breaker opened %d times, want 2", opens)
	}
}

// TestClientJitterSpreadsBackoff: the sleep is jitter × ceiling, so
// two clients with different draws land on different schedules (no
// thundering herd), and a zero draw sleeps zero.
func TestClientJitterSpreadsBackoff(t *testing.T) {
	h := &scriptedHandler{script: []int{503, 503}}
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	var slept []time.Duration
	client.sleep = func(d time.Duration) { slept = append(slept, d) }
	client.SetJitter(func() float64 { return 0.5 })
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleeps = %v, want %v (half of each ceiling)", slept, want)
		}
	}
}

// TestClientFirstRetryHonorsCap: RetryBase above RetryCap clamps from
// the first retry on.
func TestClientFirstRetryHonorsCap(t *testing.T) {
	c := NewClient("http://example.invalid", nil)
	c.RetryBase = 5 * time.Second
	c.RetryCap = time.Second
	if got := c.backoff(1); got != time.Second {
		t.Errorf("backoff(1) = %v, want the 1s cap", got)
	}
}
