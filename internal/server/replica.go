package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Replication and cache warming: the server side of the HA layer.
//
// EnableReplication republishes every WAL record the store commits
// into a persist.Streamer, served at /ha/v1/wal with checkpoint
// resync at /ha/v1/checkpoint, so read replicas (and a standby master
// mirroring a cache server) follow the live WAL instead of polling
// snapshots. /v1/warm lets a draining fleet agent push its hot specs
// to the rendezvous successor — the warm-handoff half of the HA
// design.

// EnableReplication attaches a WAL streamer with stream identity id.
// Requires a persistent server (NewPersistent); call before Handler
// and before serving traffic.
func (s *Server) EnableReplication(id uint64) error {
	if s.store == nil {
		return fmt.Errorf("server: replication requires a persistent store")
	}
	str := persist.NewStreamer(id, 0, func() ([]byte, uint64, error) {
		var payload []byte
		var next uint64
		var err error
		// All shards exclusively held: no commit — and therefore no
		// Publish — is in flight, so the captured state and the stream
		// position agree exactly.
		s.cmgr.WithExclusiveAll(func(ms []*core.Manager) {
			next = s.streamer.Next()
			payload, err = json.Marshal(persist.StreamCheckpoint{
				Next:  next,
				State: core.MergedState(ms),
			})
		})
		return payload, next, err
	})
	s.streamer = str
	s.store.SetTap(func(payload []byte) {
		str.Publish(payload)
	})
	return nil
}

// Streamer returns the replication streamer (nil unless
// EnableReplication was called), for embedding processes that ship
// the stream themselves.
func (s *Server) Streamer() *persist.Streamer { return s.streamer }

// ExportState captures the full cache state with every shard
// exclusively held — the primary side of a replica byte-identity
// audit. Quiescent only in the sense that no commit is in flight while
// the state is read.
func (s *Server) ExportState() core.ManagerState {
	var st core.ManagerState
	s.cmgr.WithExclusiveAll(func(ms []*core.Manager) {
		st = core.MergedState(ms)
	})
	return st
}

func (s *Server) handleStreamWAL(w http.ResponseWriter, r *http.Request) {
	s.streamer.ServeWAL(w, r)
}

func (s *Server) handleStreamCheckpoint(w http.ResponseWriter, r *http.Request) {
	s.streamer.ServeCheckpoint(w, r)
}

// SnapshotNow returns the cache's image snapshots for callers
// embedding the server — the fleet agent joins it with ImagesNow to
// gossip each image's package set.
func (s *Server) SnapshotNow() []core.ImageSnapshot {
	return s.cmgr.Snapshot()
}

// WarmRequest is the POST /v1/warm payload: specs to pre-load, each a
// package-key list, optionally closed server-side.
type WarmRequest struct {
	Specs [][]string `json:"specs"`
	Close bool       `json:"close"`
}

// WarmResponse reports how many specs were warmed.
type WarmResponse struct {
	Warmed int `json:"warmed"`
}

// WarmSpec runs one spec through the cache pipeline without a client
// waiting on the image — the warm-handoff path. Unknown packages are
// an error; a degraded store refuses (warming must not create state
// that recovery cannot rebuild).
func (s *Server) WarmSpec(ctx context.Context, packages []string, close bool) error {
	if len(packages) == 0 {
		return fmt.Errorf("server: empty warm spec")
	}
	ids := make([]pkggraph.PkgID, 0, len(packages))
	for _, key := range packages {
		id, ok := s.repo.Lookup(key)
		if !ok {
			return fmt.Errorf("server: unknown package %q", key)
		}
		ids = append(ids, id)
	}
	var sp spec.Spec
	if close {
		sp = spec.WithClosure(s.repo, ids)
	} else {
		sp = spec.New(ids)
	}
	if s.store != nil && s.store.Err() != nil {
		return fmt.Errorf("server: degraded, refusing warm: %v", s.store.Err())
	}
	if _, err := s.cmgr.RequestCtx(ctx, sp); err != nil {
		return err
	}
	s.maybeCheckpoint()
	if s.store != nil {
		return s.store.WaitDurable()
	}
	return nil
}

// handleWarm pre-loads a batch of specs (POST /v1/warm) so a departing
// agent's keyspace arrives hot at its successor. Per-spec failures
// abort the batch: a partially warmed successor is still strictly
// warmer than before, and the sender treats handoff as best-effort.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body WarmRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding warm request: %v", err)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	warmed := 0
	for _, pkgs := range body.Specs {
		if err := s.WarmSpec(ctx, pkgs, body.Close); err != nil {
			writeError(w, http.StatusServiceUnavailable, "warm (%d of %d applied): %v", warmed, len(body.Specs), err)
			return
		}
		warmed++
	}
	writeJSON(w, http.StatusOK, WarmResponse{Warmed: warmed})
}
