package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
)

// concurrentService is testService with the Server handle exposed, for
// tests that assert on lock accounting.
func concurrentService(t *testing.T, cfg core.Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(testRepo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client())
}

// TestReadOnlyEndpointsTakeNoWriteLock is the regression test for the
// read path: /v1/stats, /v1/images, /v1/snapshot, /v1/events, /metrics
// and repeat-hit requests must all be served without acquiring the
// exclusive cache lock, so monitoring and hit traffic never stall
// behind each other.
func TestReadOnlyEndpointsTakeNoWriteLock(t *testing.T) {
	srv, client := concurrentService(t, core.Config{Alpha: 0.6})
	for _, key := range []string{"libA/1.0/p", "libB/1.0/p"} {
		if _, err := client.Request([]string{key}, true); err != nil {
			t.Fatal(err)
		}
	}
	before := srv.cmgr.WriteLockAcquisitions()
	if before == 0 {
		t.Fatal("inserts did not take the write lock")
	}

	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Images(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Events(0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(client.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A repeat of a cached spec is a hit: read path only.
	if res, err := client.Request([]string{"libA/1.0/p"}, true); err != nil || res.Op != "hit" {
		t.Fatalf("repeat request: op=%v err=%v", res.Op, err)
	}

	if got := srv.cmgr.WriteLockAcquisitions(); got != before {
		t.Errorf("read-only traffic acquired the write lock %d time(s)", got-before)
	}
	if srv.cmgr.ReadHits() == 0 {
		t.Error("hit did not ride the read path")
	}

	// The contention series are scrapeable.
	var buf bytes.Buffer
	if err := srv.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"landlord_lock_wait_seconds",
		"landlord_read_path_hits_total",
		"landlord_write_lock_acquisitions_total",
	} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
}

// TestMaxInflightBoundsRequests pins the semaphore behaviour: with the
// limit saturated, a request whose client has given up is rejected
// with 503 instead of queueing forever, and releasing the slot lets
// traffic flow again.
func TestMaxInflightBoundsRequests(t *testing.T) {
	srv, client := concurrentService(t, core.Config{Alpha: 0.6})
	srv.SetMaxInflight(1)

	// Occupy the only slot, as an in-flight request would.
	srv.sem <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the queued client has already given up
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, client.base+"/v1/request",
		strings.NewReader(`{"packages":["libA/1.0/p"],"close":true}`))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server returned %d, want 503", rec.Code)
	}

	<-srv.sem // release the slot
	if res, err := client.Request([]string{"libA/1.0/p"}, true); err != nil || res.Op != "insert" {
		t.Fatalf("post-release request: op=%v err=%v", res.Op, err)
	}

	var buf bytes.Buffer
	if err := srv.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "landlord_inflight_requests") {
		t.Error("metrics output missing landlord_inflight_requests")
	}
}

// TestConcurrentHTTPPipeline hammers a persistent (fsync=always)
// server with parallel clients mixing writes and read-only endpoints —
// the whole pipeline under the race detector: handler concurrency,
// ConcurrentManager, group commit, single-flight checkpoints.
func TestConcurrentHTTPPipeline(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.Open(dir, persist.Options{SyncPolicy: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := NewPersistent(testRepo(t), core.Config{Alpha: 0.6}, store, 25)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetMaxInflight(4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 8
	const perWorker = 40
	keys := []string{"libA/1.0/p", "libB/1.0/p", "fw/1.0/p", "base/1.0/p"}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClient(ts.URL, ts.Client())
			for i := 0; i < perWorker; i++ {
				if _, err := c.Request([]string{keys[(g+i)%len(keys)]}, true); err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
				switch i % 10 {
				case 3:
					if _, err := c.Stats(); err != nil {
						t.Errorf("worker %d stats: %v", g, err)
					}
				case 7:
					if _, err := c.Images(); err != nil {
						t.Errorf("worker %d images: %v", g, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	st := srv.StatsNow()
	if want := int64(workers * perWorker); st.Requests != want {
		t.Errorf("served %d requests, want %d", st.Requests, want)
	}
	if err := store.Err(); err != nil {
		t.Errorf("store degraded: %v", err)
	}
	ts.Close()

	// Everything acknowledged must be visible after a restart.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	srv2, _, err := NewPersistent(testRepo(t), core.Config{Alpha: 0.6}, store2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.StatsNow(); got.Requests != st.Requests || got.Images != st.Images {
		t.Errorf("recovered stats %+v, want requests=%d images=%d", got, st.Requests, st.Images)
	}
}
