package server

import (
	"net/http"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// Trace-ring retention: the slowest TraceRingSlow requests plus up to
// TraceRingInteresting error/shed/degraded traces. Tail sampling is
// always on — the decision to keep a trace is made at its end, when
// its duration and outcome are known, so the p99 stragglers and every
// failure survive while the fast bulk is dropped.
const (
	TraceRingSlow        = 64
	TraceRingInteresting = 64
)

// initTracing wires the span pipeline into a freshly constructed
// server: the tail-sampling ring, the tracer feeding it, and the
// retention metrics. Shared by New and NewPersistent.
func (s *Server) initTracing() {
	s.traces = telemetry.NewTraceRing(TraceRingSlow, TraceRingInteresting)
	s.spans = telemetry.NewSpanTracer(s.traces)
	s.reg.GaugeFunc("landlord_traces_started_total",
		"Request traces started (tail sampling traces every request)",
		func() float64 { return float64(s.spans.Started()) })
	s.reg.GaugeFunc("landlord_trace_ring_kept",
		"Traces currently retained by the tail-sampling ring",
		func() float64 { return float64(s.traces.Kept()) })
}

// SpanTracer returns the server's span tracer. Harnesses inject a
// deterministic clock and ID generator through it; cluster sites share
// it so their dispatch traces land in the same ring.
func (s *Server) SpanTracer() *telemetry.SpanTracer { return s.spans }

// TraceRing returns the tail-sampling trace ring backing /v1/trace.
func (s *Server) TraceRing() *telemetry.TraceRing { return s.traces }

// startTrace begins the span trace for one request, continuing a
// propagated trace when the client sent a valid X-Landlord-Trace
// header and minting a fresh ID otherwise.
func (s *Server) startTrace(r *http.Request) *telemetry.ActiveTrace {
	if s.spans == nil {
		return nil
	}
	id, parent, ok := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeaderName))
	if !ok {
		return s.spans.Start(0, 0)
	}
	return s.spans.Start(id, parent)
}

// handleTrace serves GET /v1/trace (the ring dump, slowest first,
// `?limit=N` bounds it) and GET /v1/trace/{id} (one trace by its
// 16-hex-digit ID).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if rest := strings.TrimPrefix(r.URL.Path, "/v1/trace"); rest != "" && rest != "/" {
		s.handleTraceByID(w, strings.TrimPrefix(rest, "/"))
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	dump := s.traces.Dump(limit)
	if dump == nil {
		dump = []telemetry.Trace{}
	}
	writeJSON(w, http.StatusOK, dump)
}

func (s *Server) handleTraceByID(w http.ResponseWriter, idStr string) {
	id, err := telemetry.ParseTraceID(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id: %v", err)
		return
	}
	t, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "trace %s not retained (the ring keeps the slowest %d plus %d interesting)",
			id, TraceRingSlow, TraceRingInteresting)
		return
	}
	writeJSON(w, http.StatusOK, t)
}
