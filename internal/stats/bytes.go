package stats

import "fmt"

// Byte size units used throughout the simulator. These are binary
// multiples to match how the paper's cache sizes (e.g. 1.4 TB) are
// treated as raw byte capacities.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// FormatBytes renders n as a human-readable size with two decimals,
// choosing the largest unit that keeps the value at or above one.
func FormatBytes(n int64) string {
	switch {
	case n >= TB:
		return fmt.Sprintf("%.2fTB", float64(n)/float64(TB))
	case n >= GB:
		return fmt.Sprintf("%.2fGB", float64(n)/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.2fMB", float64(n)/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.2fKB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// BytesToGB converts a byte count to binary gigabytes as a float, the
// unit most of the paper's figures use on their y axes.
func BytesToGB(n int64) float64 { return float64(n) / float64(GB) }

// BytesToTB converts a byte count to binary terabytes as a float.
func BytesToTB(n int64) float64 { return float64(n) / float64(TB) }
