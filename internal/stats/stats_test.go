package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestMedianOdd(t *testing.T) {
	got := Median([]float64{5, 1, 3})
	if got != 3 {
		t.Fatalf("Median = %v, want 3", got)
	}
}

func TestMedianEven(t *testing.T) {
	got := Median([]float64{4, 1, 3, 2})
	if got != 2.5 {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestMedianEmpty(t *testing.T) {
	if !math.IsNaN(Median(nil)) {
		t.Fatal("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v, want 10", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("q1 = %v, want 40", got)
	}
}

func TestQuantileClamps(t *testing.T) {
	xs := []float64{1, 2}
	if got := Quantile(xs, -3); got != 1 {
		t.Errorf("q<0 = %v, want 1", got)
	}
	if got := Quantile(xs, 7); got != 2 {
		t.Errorf("q>1 = %v, want 2", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); got != 2.5 {
		t.Errorf("q0.25 = %v, want 2.5", got)
	}
}

func TestQuantileSingleton(t *testing.T) {
	if got := Quantile([]float64{42}, 0.9); got != 42 {
		t.Errorf("singleton quantile = %v, want 42", got)
	}
}

func TestMeanAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestStdDevTooFew(t *testing.T) {
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("StdDev of one sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestMedianOfColumns(t *testing.T) {
	rows := [][]float64{
		{1, 10, 100},
		{2, 20, 200},
		{3, 30, 300},
	}
	got := MedianOfColumns(rows)
	want := []float64{2, 20, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("col %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMedianOfColumnsEmpty(t *testing.T) {
	if got := MedianOfColumns(nil); got != nil {
		t.Fatalf("want nil, got %v", got)
	}
}

func TestMedianOfColumnsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	MedianOfColumns([][]float64{{1, 2}, {1}})
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var acc Accumulator
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		acc.Add(xs[i])
	}
	if acc.N() != len(xs) {
		t.Fatalf("N = %d", acc.N())
	}
	if !almostEqual(acc.Mean(), Mean(xs), 1e-9) {
		t.Errorf("mean %v vs %v", acc.Mean(), Mean(xs))
	}
	if !almostEqual(acc.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("std %v vs %v", acc.StdDev(), StdDev(xs))
	}
	if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
		t.Errorf("min/max mismatch")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if !math.IsNaN(acc.Mean()) || !math.IsNaN(acc.Min()) || !math.IsNaN(acc.Max()) {
		t.Fatal("empty accumulator should report NaN")
	}
}

// Property: the median always lies between min and max, and matches the
// middle element for sorted odd-length inputs.
func TestMedianProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		return m >= Min(xs) && m <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotonic non-decreasing in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Median equals sorting and picking the midpoint convention.
func TestMedianAgainstSortProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		var want float64
		n := len(sorted)
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		return almostEqual(Median(xs), want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.00KB"},
		{3 * MB / 2, "1.50MB"},
		{GB, "1.00GB"},
		{14 * TB / 10, "1.40TB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestByteConversions(t *testing.T) {
	if BytesToGB(GB) != 1 {
		t.Errorf("BytesToGB(GB) = %v", BytesToGB(GB))
	}
	if BytesToTB(TB) != 1 {
		t.Errorf("BytesToTB(TB) = %v", BytesToTB(TB))
	}
}
