// Package stats provides the small statistical toolkit used by the
// LANDLORD simulation harness: order statistics (median, quantiles),
// moments, streaming accumulators, and column-wise reductions over
// repeated simulation runs.
//
// The paper reports the median over 20 repeated simulations for every
// point in its α sweeps; Median and MedianOfColumns implement exactly
// that reduction.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs. It copies the input, so the caller's
// slice is not reordered. Median of an empty slice is NaN.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. It copies the input. Quantile of
// an empty slice is NaN; q outside [0,1] is clamped.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or NaN when fewer than two samples are given.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary captures the five-number-ish summary of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Std    float64
	Min    float64
	Max    float64
	P25    float64
	P75    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P25:    Quantile(xs, 0.25),
		P75:    Quantile(xs, 0.75),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g std=%.4g min=%.4g p25=%.4g p75=%.4g max=%.4g",
		s.N, s.Mean, s.Median, s.Std, s.Min, s.P25, s.P75, s.Max)
}

// MedianOfColumns reduces a matrix of repeated runs (rows = repetitions,
// columns = series points) to the per-column median. All rows must have
// equal length; it panics otherwise, since mismatched repetition output
// indicates a harness bug rather than a data condition.
func MedianOfColumns(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			panic(fmt.Sprintf("stats: row %d has %d columns, want %d", i, len(r), width))
		}
	}
	out := make([]float64, width)
	col := make([]float64, len(rows))
	for j := 0; j < width; j++ {
		for i := range rows {
			col[i] = rows[i][j]
		}
		out[j] = Median(col)
	}
	return out
}

// Accumulator is a streaming mean/variance/min/max accumulator using
// Welford's algorithm. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of samples added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or NaN when empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the running sample variance, or NaN when fewer than
// two samples have been added.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample seen, or NaN when empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest sample seen, or NaN when empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}
