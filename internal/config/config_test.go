package config

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/persist"
)

func writeConfig(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "site.json")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDefault(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if s.Addr != ":8080" || *s.Alpha != 0.8 || !*s.MinHash {
		t.Fatalf("unexpected defaults: %+v", s)
	}
}

func TestLoadOverridesAndDefaults(t *testing.T) {
	path := writeConfig(t, `{
		"alpha": 0.65,
		"capacity_gb": 2048,
		"repo_seed": 7,
		"prune_every_requests": 100,
		"prune_utilization": 0.6,
		"prune_min_served": 3
	}`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *s.Alpha != 0.65 || s.CapacityGB != 2048 || s.RepoSeed != 7 {
		t.Fatalf("overrides lost: %+v", s)
	}
	if s.Addr != ":8080" {
		t.Fatalf("default addr lost: %q", s.Addr)
	}
	if s.MinHash == nil || !*s.MinHash {
		t.Fatal("default minhash lost")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := Load(writeConfig(t, "{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Load(writeConfig(t, `{"alpha": 3}`)); err == nil {
		t.Error("bad alpha accepted")
	}
	if _, err := Load(writeConfig(t, `{"capacity_gb": -1}`)); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := Load(writeConfig(t, `{"addr": ""}`)); err == nil {
		t.Error("empty addr accepted")
	}
	if _, err := Load(writeConfig(t, `{"prune_every_requests": 10}`)); err == nil {
		t.Error("pruning without utilization accepted")
	}
	if _, err := Load(writeConfig(t, `{"prune_every_requests": 10, "prune_utilization": 0.5}`)); err == nil {
		t.Error("pruning without min_served accepted")
	}
	if _, err := Load(writeConfig(t, `{"fsync": "sometimes"}`)); err == nil {
		t.Error("unknown fsync policy accepted")
	}
	if _, err := Load(writeConfig(t, `{"fsync_interval_ms": -5}`)); err == nil {
		t.Error("negative fsync interval accepted")
	}
	if _, err := Load(writeConfig(t, `{"checkpoint_every_requests": -1}`)); err == nil {
		t.Error("negative checkpoint threshold accepted")
	}
	if _, err := Load(writeConfig(t, `{"wal_segment_mb": -1}`)); err == nil {
		t.Error("negative segment size accepted")
	}
	if _, err := Load(writeConfig(t, `{"max_inflight": -4}`)); err == nil {
		t.Error("negative max_inflight accepted")
	}
	if _, err := Load(writeConfig(t, `{"shed_rate": -1}`)); err == nil {
		t.Error("negative shed_rate accepted")
	}
	if _, err := Load(writeConfig(t, `{"shed_burst": -1}`)); err == nil {
		t.Error("negative shed_burst accepted")
	}
	if _, err := Load(writeConfig(t, `{"shed_queue_depth": -1}`)); err == nil {
		t.Error("negative shed_queue_depth accepted")
	}
	if _, err := Load(writeConfig(t, `{"shed_burst": 10}`)); err == nil {
		t.Error("shed_burst without shed_rate accepted")
	}
	if _, err := Load(writeConfig(t, `{"degraded_probe_interval_ms": -1}`)); err == nil {
		t.Error("negative degraded_probe_interval_ms accepted")
	}
	if _, err := Load(writeConfig(t, `{"retry_budget": 1.5}`)); err == nil {
		t.Error("retry_budget > 1 accepted")
	}
	if _, err := Load(writeConfig(t, `{"breaker_open_ms": -1}`)); err == nil {
		t.Error("negative breaker_open_ms accepted")
	}
	if _, err := Load(writeConfig(t, `{"mode": "overlord"}`)); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Load(writeConfig(t, `{"mode": "agent"}`)); err == nil {
		t.Error("agent mode without master_url accepted")
	}
	if _, err := Load(writeConfig(t, `{"mode": "agent", "master_url": "http://m:8080"}`)); err == nil {
		t.Error("agent mode without advertise accepted")
	}
	if _, err := Load(writeConfig(t, `{"master_url": "http://m:8080"}`)); err == nil {
		t.Error("master_url in standalone mode accepted")
	}
	if _, err := Load(writeConfig(t, `{"mode": "master", "fleet_quorum": -1}`)); err == nil {
		t.Error("negative fleet_quorum accepted")
	}
	if _, err := Load(writeConfig(t, `{"mode": "master", "fleet_vnodes": -1}`)); err == nil {
		t.Error("negative fleet_vnodes accepted")
	}
	if _, err := Load(writeConfig(t, `{"heartbeat_interval_ms": -1}`)); err == nil {
		t.Error("negative heartbeat_interval_ms accepted")
	}
	if _, err := Load(writeConfig(t, `{"forward_timeout_ms": -1}`)); err == nil {
		t.Error("negative forward_timeout_ms accepted")
	}
}

// TestCacheShardsValidation pins the cache_shards contract: nil
// defaults to 1, valid counts pass through, and counts below 1 are
// rejected with exactly the documented message (operators grep for
// it; DESIGN.md §11 quotes it).
func TestCacheShardsValidation(t *testing.T) {
	if got := Default().Shards(); got != 1 {
		t.Fatalf("default shard count = %d, want 1", got)
	}
	s, err := Load(writeConfig(t, `{"cache_shards": 16}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 16 {
		t.Fatalf("cache_shards lost: %d", s.Shards())
	}
	if got := s.CoreConfig(nil).Shards; got != 16 {
		t.Fatalf("CoreConfig shards = %d, want 16", got)
	}
	for _, n := range []int{0, -4} {
		bad := Default()
		bad.CacheShards = &n
		err := bad.Validate()
		if err == nil {
			t.Fatalf("cache_shards=%d accepted", n)
		}
		want := fmt.Sprintf("cache_shards must be at least 1 (got %d)", n)
		if err.Error() != want {
			t.Errorf("cache_shards=%d error = %q, want %q", n, err, want)
		}
	}
}

func TestFleetConfig(t *testing.T) {
	// Defaults: standalone, 1s heartbeat-derived timers.
	d := Default()
	if d.FleetMode() != ModeStandalone {
		t.Fatalf("default mode = %q", d.FleetMode())
	}
	if d.HeartbeatInterval() != time.Second {
		t.Fatalf("default heartbeat = %v", d.HeartbeatInterval())
	}

	s, err := Load(writeConfig(t, `{
		"mode": "master",
		"fleet_quorum": 2,
		"fleet_vnodes": 64,
		"heartbeat_interval_ms": 500,
		"forward_timeout_ms": 1500,
		"breaker_failures": 4
	}`))
	if err != nil {
		t.Fatal(err)
	}
	mc := s.FleetMasterConfig()
	if mc.Quorum != 2 || mc.VNodes != 64 {
		t.Fatalf("master config: %+v", mc)
	}
	if mc.SuspectAfter != 1500*time.Millisecond || mc.DeadAfter != 5*time.Second {
		t.Fatalf("heartbeat-derived timers wrong: suspect=%v dead=%v", mc.SuspectAfter, mc.DeadAfter)
	}
	if mc.ForwardTimeout != 1500*time.Millisecond || mc.Breaker.Failures != 4 {
		t.Fatalf("master config: %+v", mc)
	}

	a, err := Load(writeConfig(t, `{
		"mode": "agent",
		"master_url": "http://master:8080",
		"advertise": "http://agent1:8081"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ac := a.FleetAgentConfig(42)
	if ac.ID != "http://agent1:8081" {
		t.Fatalf("agent id should default to advertise: %+v", ac)
	}
	if ac.MasterURL != "http://master:8080" || ac.Gen != 42 || ac.Interval != time.Second {
		t.Fatalf("agent config: %+v", ac)
	}
	a.AgentID = "agent-1"
	if got := a.FleetAgentConfig(1).ID; got != "agent-1" {
		t.Fatalf("explicit agent_id lost: %q", got)
	}
}

func TestHAConfig(t *testing.T) {
	// A standby master: mirrors the named primary, promotes on silence.
	s, err := Load(writeConfig(t, `{
		"mode": "master",
		"master_id": "master-b",
		"standby_of": "http://master-a:8080",
		"state_dir": "/var/lib/landlord/ha",
		"lease_interval_ms": 250
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !s.HAEnabled() {
		t.Fatal("master_id set but HAEnabled false")
	}
	hc := s.FleetHAConfig()
	if hc.ID != "master-b" || hc.PeerURL != "http://master-a:8080" || hc.StartPrimary {
		t.Fatalf("standby HA config: %+v", hc)
	}
	if hc.StateDir != "/var/lib/landlord/ha" || hc.LeaseInterval != 250*time.Millisecond {
		t.Fatalf("standby HA config: %+v", hc)
	}
	if s.FleetMasterConfig().HA.ID != "master-b" {
		t.Fatal("FleetMasterConfig does not carry the HA config")
	}

	// A primary names its standby via peer_url and starts holding the
	// lease at epoch 1.
	p, err := Load(writeConfig(t, `{
		"mode": "master",
		"master_id": "master-a",
		"peer_url": "http://master-b:8080"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if hp := p.FleetHAConfig(); !hp.StartPrimary || hp.PeerURL != "http://master-b:8080" {
		t.Fatalf("primary HA config: %+v", hp)
	}
	if p.LeaseInterval() != time.Second {
		t.Fatalf("default lease interval = %v", p.LeaseInterval())
	}

	// HA off: the zero HAConfig disables the lease protocol entirely.
	if hc := Default().FleetHAConfig(); hc.ID != "" {
		t.Fatalf("HA config without master_id: %+v", hc)
	}

	// An HA-fleet agent heartbeats every master.
	ag, err := Load(writeConfig(t, `{
		"mode": "agent",
		"master_urls": ["http://master-a:8080", "http://master-b:8080"],
		"advertise": "http://agent1:8081"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if urls := ag.FleetAgentConfig(1).MasterURLs; len(urls) != 2 || urls[1] != "http://master-b:8080" {
		t.Fatalf("agent master_urls lost: %v", urls)
	}

	// Validation rejects inconsistent HA wiring.
	for _, bad := range []string{
		`{"mode": "master", "standby_of": "http://a"}`,                                  // no identity
		`{"mode": "master", "master_id": "m", "standby_of": "http://a", "peer_url": "http://b"}`, // both peers
		`{"mode": "standalone", "master_id": "m"}`,                                      // wrong mode
		`{"mode": "master", "master_urls": ["http://a"]}`,                               // wrong mode
		`{"mode": "agent", "advertise": "http://x", "master_urls": [""]}`,               // empty entry
		`{"mode": "master", "lease_interval_ms": 100}`,                                  // lease without HA
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("config accepted: %s", bad)
		}
	}
}

func TestResilienceConfig(t *testing.T) {
	s, err := Load(writeConfig(t, `{
		"shed_rate": 500,
		"shed_burst": 100,
		"shed_queue_depth": 64,
		"degraded_probe_interval_ms": 250,
		"retry_budget": 0.3,
		"breaker_failures": 4,
		"breaker_open_ms": 2000,
		"breaker_probes": 2
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !s.ShedderEnabled() {
		t.Fatal("shedder not enabled")
	}
	sc := s.ShedderConfig()
	if sc.Rate != 500 || sc.Burst != 100 || sc.QueueDepth != 64 {
		t.Fatalf("shedder config: %+v", sc)
	}
	if s.DegradedProbeInterval() != 250*time.Millisecond {
		t.Errorf("probe interval = %v, want 250ms", s.DegradedProbeInterval())
	}
	bc := s.BreakerConfig()
	if bc.Failures != 4 || bc.OpenFor != 2*time.Second || bc.Probes != 2 {
		t.Fatalf("breaker config: %+v", bc)
	}
	if s.RetryBudget != 0.3 {
		t.Errorf("retry_budget = %v, want 0.3", s.RetryBudget)
	}

	// Defaults: no shedding, probe on at 1s, zero-value client knobs
	// defer to internal/resilience defaults.
	d := Default()
	if d.ShedderEnabled() {
		t.Error("default config sheds")
	}
	if d.DegradedProbeInterval() != time.Second {
		t.Errorf("default probe interval = %v, want 1s", d.DegradedProbeInterval())
	}
	if bc := d.BreakerConfig(); bc.Failures != 0 || bc.OpenFor != 0 || bc.Probes != 0 {
		t.Errorf("default breaker config not zero: %+v", bc)
	}
}

func TestMaxInflight(t *testing.T) {
	s, err := Load(writeConfig(t, `{"max_inflight": 32}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxInflight != 32 {
		t.Fatalf("max_inflight = %d, want 32", s.MaxInflight)
	}
	if Default().MaxInflight != 0 {
		t.Fatal("default max_inflight should be 0 (unbounded)")
	}
}

func TestPersistOptions(t *testing.T) {
	path := writeConfig(t, `{
		"state_dir": "/var/lib/landlord",
		"fsync": "always",
		"fsync_interval_ms": 250,
		"checkpoint_every_requests": 5000,
		"wal_segment_mb": 8
	}`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.StateDir != "/var/lib/landlord" || s.CheckpointEveryRequests != 5000 {
		t.Fatalf("persistence fields lost: %+v", s)
	}
	opts := s.PersistOptions()
	if opts.SyncPolicy != persist.FsyncAlways {
		t.Errorf("sync policy = %v, want always", opts.SyncPolicy)
	}
	if opts.SegmentBytes != 8<<20 {
		t.Errorf("segment bytes = %d, want %d", opts.SegmentBytes, 8<<20)
	}
	if opts.SyncInterval != 250*time.Millisecond {
		t.Errorf("sync interval = %v, want 250ms", opts.SyncInterval)
	}

	// Defaults: empty fsync parses to the interval policy, zero sizes
	// defer to the store's defaults.
	opts = Default().PersistOptions()
	if opts.SyncPolicy != persist.FsyncInterval || opts.SegmentBytes != 0 {
		t.Errorf("default options = %+v", opts)
	}
}

// TestExampleSiteConfig pins the shipped example config: it must parse
// and validate, and it must exercise every durability knob.
func TestExampleSiteConfig(t *testing.T) {
	s, err := Load(filepath.Join("..", "..", "examples", "site.json"))
	if err != nil {
		t.Fatalf("examples/site.json: %v", err)
	}
	if s.StateDir == "" || s.Fsync == "" || s.CheckpointEveryRequests == 0 || s.WALSegmentMB == 0 {
		t.Errorf("example config leaves durability keys unset: %+v", s)
	}
	if s.PruneEveryRequests == 0 {
		t.Error("example config should demonstrate the prune schedule")
	}
}

// TestExampleFleetConfigs pins the shipped fleet example configs: the
// master must demonstrate the quorum knob, the agent the full
// master_url/advertise/agent_id triple.
func TestExampleFleetConfigs(t *testing.T) {
	m, err := Load(filepath.Join("..", "..", "examples", "master.json"))
	if err != nil {
		t.Fatalf("examples/master.json: %v", err)
	}
	if m.FleetMode() != ModeMaster || m.FleetQuorum < 2 {
		t.Errorf("example master config should demand a quorum: %+v", m)
	}
	a, err := Load(filepath.Join("..", "..", "examples", "agent.json"))
	if err != nil {
		t.Fatalf("examples/agent.json: %v", err)
	}
	if a.FleetMode() != ModeAgent || a.MasterURL == "" || a.Advertise == "" || a.AgentID == "" {
		t.Errorf("example agent config leaves fleet keys unset: %+v", a)
	}
	if a.StateDir == "" {
		t.Error("example agent config should keep its cache durable")
	}
}

func TestOpenRepoGenerated(t *testing.T) {
	s := Default()
	s.RepoSeed = 3
	// Generating the full default repository takes ~100ms; acceptable.
	repo, err := s.OpenRepo()
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 9660 {
		t.Fatalf("repo size = %d", repo.Len())
	}
}

func TestOpenRepoFromFile(t *testing.T) {
	s := Default()
	s.RepoFile = filepath.Join(t.TempDir(), "missing.jsonl")
	if _, err := s.OpenRepo(); err == nil {
		t.Fatal("missing repo file accepted")
	}
}

func TestCoreConfig(t *testing.T) {
	s := Default()
	s.CapacityGB = 1
	s.SingleVersionFamilies = []string{"py"}
	repo, err := s.OpenRepo()
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.CoreConfig(repo)
	if cfg.Alpha != 0.8 || cfg.Capacity != 1<<30 {
		t.Fatalf("core config: %+v", cfg)
	}
	if cfg.MinHash == nil {
		t.Fatal("minhash not enabled")
	}
	if cfg.Conflicts == nil {
		t.Fatal("conflict policy not built")
	}
	// Disabled minhash and nil alpha take sensible paths.
	off := false
	s.MinHash = &off
	s.Alpha = nil
	cfg = s.CoreConfig(repo)
	if cfg.MinHash != nil || cfg.Alpha != 0.8 {
		t.Fatalf("fallbacks wrong: %+v", cfg)
	}
}
