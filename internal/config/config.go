// Package config loads the site configuration file used by the
// landlordd daemon: cache policy (α, capacity, conflict handling),
// repository source, and maintenance schedule. A site operator tunes
// exactly the knobs the paper ends on — "LANDLORD provides a good deal
// of flexibility to match the properties of a given execution site and
// workload(s)" — without recompiling.
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/persist"
	"repro/internal/pkggraph"
	"repro/internal/resilience"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Daemon deployment modes (the "mode" config field / -mode flag).
const (
	ModeStandalone = "standalone" // single daemon serving its own cache (default)
	ModeMaster     = "master"     // fleet control plane: routes to agents, no local cache
	ModeAgent      = "agent"      // serves its cache and registers with a master
)

// Site is the daemon configuration.
type Site struct {
	// Addr is the listen address (default ":8080").
	Addr string `json:"addr"`

	// Alpha is the merge threshold (default 0.8, the paper's
	// recommended starting point).
	Alpha *float64 `json:"alpha,omitempty"`
	// CapacityGB caps the cache in gigabytes (0 = unlimited).
	CapacityGB float64 `json:"capacity_gb"`
	// MinHash enables the candidate prefilter (default true).
	MinHash *bool `json:"minhash,omitempty"`
	// CacheShards partitions the cache into this many independently
	// locked shards (default 1). Requests route to a shard by the hash
	// of their package keys; the capacity splits across shards and the
	// eviction balancer reshapes the split at maintenance points. Keep
	// it stable across restarts of a durable site: reloading a cache
	// under a different shard count re-homes only newly inserted
	// images, costing hit locality on the old ones.
	CacheShards *int `json:"cache_shards,omitempty"`

	// RepoFile loads the repository from a JSONL file; when empty, the
	// default synthetic repository is generated from RepoSeed.
	RepoFile string `json:"repo_file"`
	RepoSeed int64  `json:"repo_seed"`

	// SingleVersionFamilies lists package families that must not
	// appear in two versions within one image (spec.SingleVersionPolicy).
	// Empty means no conflict checking (the CVMFS case).
	SingleVersionFamilies []string `json:"single_version_families"`

	// MaxInflight bounds how many cache requests the server processes
	// concurrently; excess requests queue. 0 (the default) leaves
	// concurrency bounded only by the HTTP server's connection
	// handling.
	MaxInflight int `json:"max_inflight"`

	// PruneEveryRequests runs a split pass every N requests
	// (0 disables).
	PruneEveryRequests int `json:"prune_every_requests"`
	// PruneUtilization and PruneMinServed parameterize the pass.
	PruneUtilization float64 `json:"prune_utilization"`
	PruneMinServed   int     `json:"prune_min_served"`

	// StateDir enables durable cache state: a write-ahead log plus
	// checkpoints under this directory, recovered at startup. Empty
	// disables persistence (the cache restarts cold).
	StateDir string `json:"state_dir"`
	// Fsync is the WAL flush policy: "always", "interval" (default),
	// or "never". See internal/persist for the trade-offs.
	Fsync string `json:"fsync"`
	// FsyncIntervalMS bounds staleness under the "interval" policy
	// (default 100ms).
	FsyncIntervalMS int `json:"fsync_interval_ms"`
	// CheckpointEveryRequests compacts the WAL into a checkpoint every
	// N requests (0 = only at shutdown and on POST /v1/checkpoint).
	CheckpointEveryRequests int `json:"checkpoint_every_requests"`
	// WALSegmentMB rotates WAL segments at this size (default 4 MB).
	WALSegmentMB int `json:"wal_segment_mb"`

	// Admission control (internal/resilience): requests beyond the
	// token-bucket rate or the queue depth are refused with 429 +
	// Retry-After before they consume a connection or the cache lock.
	// ShedRate is admitted requests/second (0 disables rate shedding);
	// ShedBurst the bucket burst (default: the rate); ShedQueueDepth
	// the maximum concurrently admitted requests (0 = unbounded).
	ShedRate       float64 `json:"shed_rate"`
	ShedBurst      int     `json:"shed_burst"`
	ShedQueueDepth int     `json:"shed_queue_depth"`

	// DegradedProbeIntervalMS is how often a daemon whose WAL has gone
	// sticky attempts a heal probe (fresh segment + full checkpoint).
	// Only meaningful with StateDir; 0 disables self-healing (default
	// 1000ms).
	DegradedProbeIntervalMS int `json:"degraded_probe_interval_ms"`

	// Client resilience defaults for tooling built against this site:
	// the retry-budget deposit ratio (retries per initial request a
	// sustained brown-out may cost, default 0.2) and the circuit
	// breaker around every exchange (consecutive failures to open,
	// cool-down, half-open probe count). Zero values take the
	// internal/resilience defaults.
	RetryBudget     float64 `json:"retry_budget"`
	BreakerFailures int     `json:"breaker_failures"`
	BreakerOpenMS   int     `json:"breaker_open_ms"`
	BreakerProbes   int     `json:"breaker_probes"`

	// Fleet deployment (internal/fleet). Mode selects the daemon role:
	// "" or "standalone" serves the local cache directly; "master"
	// runs the routing control plane only (no repository, no cache) and
	// forwards /v1/request to registered agents by consistent-hashed
	// spec signature; "agent" serves the local cache and additionally
	// registers with MasterURL, heartbeating its image directory.
	Mode string `json:"mode"`
	// MasterURL is the master's base URL (agent mode only).
	MasterURL string `json:"master_url"`
	// Advertise is the URL the master should reach this agent at
	// (agent mode only; required, since the listen address is usually
	// a wildcard the master cannot dial).
	Advertise string `json:"advertise"`
	// AgentID names this agent in the fleet (default: Advertise).
	AgentID string `json:"agent_id"`
	// FleetQuorum is how many healthy agents the master's /v1/readyz
	// requires before reporting ready (default 1).
	FleetQuorum int `json:"fleet_quorum"`
	// FleetVNodes is the consistent-hash ring's virtual nodes per
	// agent (0 = the fleet default).
	FleetVNodes int `json:"fleet_vnodes"`
	// HeartbeatIntervalMS is the agent's register/heartbeat cadence
	// (default 1000ms). The master's suspect/dead timers scale from
	// it: suspect after 3 missed beats, dead after 10.
	HeartbeatIntervalMS int `json:"heartbeat_interval_ms"`
	// ForwardTimeoutMS caps each forwarded request attempt at the
	// master (0 = the fleet default).
	ForwardTimeoutMS int `json:"forward_timeout_ms"`

	// MasterURLs lists every master's base URL for an HA fleet (agent
	// mode): the agent registers with and heartbeats all of them, so
	// whichever master holds the lease always has a live membership
	// view, and the agent learns a failover from whichever master still
	// reaches it. Empty means MasterURL alone.
	MasterURLs []string `json:"master_urls"`

	// High availability (master mode; internal/fleet ha.go). MasterID
	// names this master in the lease protocol and enables HA when set:
	// forwards are stamped X-Landlord-Epoch/-Master, and the master
	// serves /fleet/v1/lease. StandbyOf makes this master a warm
	// standby of the given primary's base URL — it mirrors the
	// primary's durable lease + membership log over the lease channel
	// and promotes after two silent lease intervals. PeerURL points a
	// primary at its standby so a deposed primary demotes into polling
	// it; StandbyOf and PeerURL are mutually exclusive. With StateDir
	// set, the folded HA state persists there as ha-state.json.
	MasterID        string `json:"master_id"`
	StandbyOf       string `json:"standby_of"`
	PeerURL         string `json:"peer_url"`
	LeaseIntervalMS int    `json:"lease_interval_ms"`
}

// Default returns the configuration the daemon uses with no file.
func Default() Site {
	alpha := 0.8
	minhash := true
	return Site{
		Addr:                    ":8080",
		Alpha:                   &alpha,
		RepoSeed:                1,
		MinHash:                 &minhash,
		DegradedProbeIntervalMS: 1000,
	}
}

// Load reads and validates a configuration file. Missing optional
// fields take their defaults.
func Load(path string) (Site, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Site{}, err
	}
	site, err := Parse(data)
	if err != nil {
		return Site{}, fmt.Errorf("config: %s: %w", path, err)
	}
	return site, nil
}

// Parse decodes and validates a configuration from raw bytes. Missing
// optional fields take their defaults.
func Parse(data []byte) (Site, error) {
	site := Default()
	if err := json.Unmarshal(data, &site); err != nil {
		return Site{}, fmt.Errorf("parsing: %w", err)
	}
	if err := site.Validate(); err != nil {
		return Site{}, err
	}
	return site, nil
}

// Validate checks field ranges.
func (s Site) Validate() error {
	if s.Addr == "" {
		return fmt.Errorf("addr must not be empty")
	}
	if s.Alpha != nil && (*s.Alpha < 0 || *s.Alpha > 1) {
		return fmt.Errorf("alpha %v out of range [0,1]", *s.Alpha)
	}
	if s.CapacityGB < 0 {
		return fmt.Errorf("capacity_gb must be non-negative")
	}
	if s.CacheShards != nil && *s.CacheShards < 1 {
		return fmt.Errorf("cache_shards must be at least 1 (got %d)", *s.CacheShards)
	}
	if s.MaxInflight < 0 {
		return fmt.Errorf("max_inflight must be non-negative")
	}
	if s.PruneEveryRequests < 0 {
		return fmt.Errorf("prune_every_requests must be non-negative")
	}
	if s.PruneEveryRequests > 0 {
		if s.PruneUtilization <= 0 || s.PruneUtilization >= 1 {
			return fmt.Errorf("prune_utilization %v out of range (0,1)", s.PruneUtilization)
		}
		if s.PruneMinServed < 1 {
			return fmt.Errorf("prune_min_served must be >= 1 when pruning")
		}
	}
	if _, err := persist.ParseFsyncPolicy(s.Fsync); err != nil {
		return fmt.Errorf("fsync: %w", err)
	}
	if s.FsyncIntervalMS < 0 {
		return fmt.Errorf("fsync_interval_ms must be non-negative")
	}
	if s.CheckpointEveryRequests < 0 {
		return fmt.Errorf("checkpoint_every_requests must be non-negative")
	}
	if s.WALSegmentMB < 0 {
		return fmt.Errorf("wal_segment_mb must be non-negative")
	}
	if s.ShedRate < 0 {
		return fmt.Errorf("shed_rate must be non-negative")
	}
	if s.ShedBurst < 0 {
		return fmt.Errorf("shed_burst must be non-negative")
	}
	if s.ShedQueueDepth < 0 {
		return fmt.Errorf("shed_queue_depth must be non-negative")
	}
	if s.ShedBurst > 0 && s.ShedRate <= 0 {
		return fmt.Errorf("shed_burst without shed_rate has no effect; set shed_rate")
	}
	if s.DegradedProbeIntervalMS < 0 {
		return fmt.Errorf("degraded_probe_interval_ms must be non-negative")
	}
	if s.RetryBudget < 0 || s.RetryBudget > 1 {
		return fmt.Errorf("retry_budget %v out of range [0,1]", s.RetryBudget)
	}
	if s.BreakerFailures < 0 || s.BreakerOpenMS < 0 || s.BreakerProbes < 0 {
		return fmt.Errorf("breaker_* values must be non-negative")
	}
	switch s.FleetMode() {
	case ModeStandalone:
		if s.MasterURL != "" {
			return fmt.Errorf("master_url requires mode %q", ModeAgent)
		}
	case ModeMaster:
		if s.MasterURL != "" {
			return fmt.Errorf("master_url requires mode %q", ModeAgent)
		}
	case ModeAgent:
		if s.MasterURL == "" && len(s.MasterURLs) == 0 {
			return fmt.Errorf("mode %q requires master_url or master_urls", ModeAgent)
		}
		if s.Advertise == "" {
			return fmt.Errorf("mode %q requires advertise (the URL the master dials back)", ModeAgent)
		}
	default:
		return fmt.Errorf("mode %q unknown (want %q, %q or %q)", s.Mode, ModeStandalone, ModeMaster, ModeAgent)
	}
	if s.FleetQuorum < 0 {
		return fmt.Errorf("fleet_quorum must be non-negative")
	}
	if s.FleetVNodes < 0 {
		return fmt.Errorf("fleet_vnodes must be non-negative")
	}
	if s.HeartbeatIntervalMS < 0 {
		return fmt.Errorf("heartbeat_interval_ms must be non-negative")
	}
	if s.ForwardTimeoutMS < 0 {
		return fmt.Errorf("forward_timeout_ms must be non-negative")
	}
	if len(s.MasterURLs) > 0 && s.FleetMode() != ModeAgent {
		return fmt.Errorf("master_urls requires mode %q", ModeAgent)
	}
	for _, u := range s.MasterURLs {
		if u == "" {
			return fmt.Errorf("master_urls must not contain empty entries")
		}
	}
	if (s.MasterID != "" || s.StandbyOf != "" || s.PeerURL != "") && s.FleetMode() != ModeMaster {
		return fmt.Errorf("master_id/standby_of/peer_url require mode %q", ModeMaster)
	}
	if s.StandbyOf != "" && s.PeerURL != "" {
		return fmt.Errorf("standby_of and peer_url are mutually exclusive (a standby's peer is its primary)")
	}
	if (s.StandbyOf != "" || s.PeerURL != "") && s.MasterID == "" {
		return fmt.Errorf("standby_of/peer_url require master_id (the lease identity)")
	}
	if s.LeaseIntervalMS < 0 {
		return fmt.Errorf("lease_interval_ms must be non-negative")
	}
	if s.LeaseIntervalMS > 0 && s.MasterID == "" {
		return fmt.Errorf("lease_interval_ms requires master_id (high availability off)")
	}
	return nil
}

// FleetMode normalizes the deployment mode ("" means standalone).
func (s Site) FleetMode() string {
	if s.Mode == "" {
		return ModeStandalone
	}
	return s.Mode
}

// HeartbeatInterval is the agent beat cadence (default 1s).
func (s Site) HeartbeatInterval() time.Duration {
	if s.HeartbeatIntervalMS <= 0 {
		return time.Second
	}
	return time.Duration(s.HeartbeatIntervalMS) * time.Millisecond
}

// FleetMasterConfig assembles the master control-plane configuration.
// Suspect/dead timers derive from the heartbeat cadence — an agent is
// suspect after 3 missed beats and dead (removed from the ring) after
// 10 — so operators tune one knob, not three that can disagree.
func (s Site) FleetMasterConfig() fleet.MasterConfig {
	beat := s.HeartbeatInterval()
	return fleet.MasterConfig{
		Quorum:         s.FleetQuorum,
		VNodes:         s.FleetVNodes,
		SuspectAfter:   3 * beat,
		DeadAfter:      10 * beat,
		ForwardTimeout: time.Duration(s.ForwardTimeoutMS) * time.Millisecond,
		Breaker:        s.BreakerConfig(),
		HA:             s.FleetHAConfig(),
	}
}

// HAEnabled reports whether this master participates in the lease
// protocol (master_id set).
func (s Site) HAEnabled() bool { return s.MasterID != "" }

// LeaseInterval is the master lease tick cadence (default 1s). The
// failover detection window is two intervals.
func (s Site) LeaseInterval() time.Duration {
	if s.LeaseIntervalMS <= 0 {
		return time.Second
	}
	return time.Duration(s.LeaseIntervalMS) * time.Millisecond
}

// FleetHAConfig assembles the lease/replication half of a master. Zero
// (HA off) when MasterID is unset. A standby's peer is its primary
// (standby_of); a primary's peer is its standby (peer_url), which a
// deposed primary demotes into polling.
func (s Site) FleetHAConfig() fleet.HAConfig {
	if s.MasterID == "" {
		return fleet.HAConfig{}
	}
	peer := s.PeerURL
	if s.StandbyOf != "" {
		peer = s.StandbyOf
	}
	return fleet.HAConfig{
		ID:            s.MasterID,
		PeerURL:       peer,
		StartPrimary:  s.StandbyOf == "",
		StateDir:      s.StateDir,
		LeaseInterval: s.LeaseInterval(),
	}
}

// FleetAgentConfig assembles the agent-side fleet configuration. gen
// must be fresh per process start (e.g. startup time in nanoseconds)
// so the master detects restarts and resets its directory mirror.
func (s Site) FleetAgentConfig(gen uint64) fleet.AgentConfig {
	id := s.AgentID
	if id == "" {
		id = s.Advertise
	}
	return fleet.AgentConfig{
		ID:           id,
		AdvertiseURL: s.Advertise,
		MasterURL:    s.MasterURL,
		MasterURLs:   s.MasterURLs,
		Gen:          gen,
		Interval:     s.HeartbeatInterval(),
	}
}

// ShedderEnabled reports whether the site configures admission control.
func (s Site) ShedderEnabled() bool {
	return s.ShedRate > 0 || s.ShedQueueDepth > 0
}

// ShedderConfig assembles the admission-control configuration. Only
// meaningful when ShedderEnabled.
func (s Site) ShedderConfig() resilience.ShedderConfig {
	return resilience.ShedderConfig{
		Rate:       s.ShedRate,
		Burst:      s.ShedBurst,
		QueueDepth: s.ShedQueueDepth,
	}
}

// DegradedProbeInterval is the heal-probe cadence (0 = disabled).
func (s Site) DegradedProbeInterval() time.Duration {
	return time.Duration(s.DegradedProbeIntervalMS) * time.Millisecond
}

// BreakerConfig assembles the client circuit-breaker configuration the
// site recommends; zero fields take the resilience defaults.
func (s Site) BreakerConfig() resilience.BreakerConfig {
	return resilience.BreakerConfig{
		Failures: s.BreakerFailures,
		OpenFor:  time.Duration(s.BreakerOpenMS) * time.Millisecond,
		Probes:   s.BreakerProbes,
	}
}

// PersistOptions assembles the durability options for the state
// directory. Only meaningful when StateDir is set.
func (s Site) PersistOptions() persist.Options {
	policy, _ := persist.ParseFsyncPolicy(s.Fsync) // Validate caught bad values
	return persist.Options{
		SegmentBytes: int64(s.WALSegmentMB) << 20,
		SyncPolicy:   policy,
		SyncInterval: time.Duration(s.FsyncIntervalMS) * time.Millisecond,
	}
}

// OpenRepo loads or generates the configured repository.
func (s Site) OpenRepo() (*pkggraph.Repo, error) {
	if s.RepoFile != "" {
		return pkggraph.LoadFile(s.RepoFile)
	}
	return pkggraph.Generate(pkggraph.DefaultGenConfig(), s.RepoSeed)
}

// Shards returns the configured cache shard count (default 1).
func (s Site) Shards() int {
	if s.CacheShards == nil || *s.CacheShards < 1 {
		return 1
	}
	return *s.CacheShards
}

// CoreConfig assembles the manager configuration for the repository.
func (s Site) CoreConfig(repo *pkggraph.Repo) core.Config {
	cfg := core.Config{
		Capacity: int64(s.CapacityGB * float64(stats.GB)),
		Shards:   s.Shards(),
	}
	if s.Alpha != nil {
		cfg.Alpha = *s.Alpha
	} else {
		cfg.Alpha = 0.8
	}
	if s.MinHash == nil || *s.MinHash {
		cfg.MinHash = core.DefaultMinHash()
	}
	if len(s.SingleVersionFamilies) > 0 {
		cfg.Conflicts = spec.NewSingleVersionPolicy(repo, s.SingleVersionFamilies...)
	}
	return cfg
}
