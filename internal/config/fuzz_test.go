package config

import (
	"encoding/json"
	"testing"
)

// FuzzConfigLoad throws arbitrary bytes at the configuration parser:
// it must never panic, anything it accepts must validate, and an
// accepted configuration must survive a marshal/parse round trip —
// a config the daemon loaded can always be written back out and
// reloaded identically.
func FuzzConfigLoad(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"addr":":9090","alpha":0.6,"capacity_gb":50}`))
	f.Add([]byte(`{"alpha":1.5}`))
	f.Add([]byte(`{"state_dir":"/tmp/x","fsync":"always","wal_segment_mb":4,"checkpoint_every_requests":100}`))
	f.Add([]byte(`{"prune_every_requests":50,"prune_utilization":0.7,"prune_min_served":2}`))
	f.Add([]byte(`{"single_version_families":["python","gcc"],"max_inflight":8}`))
	f.Add([]byte(`{"fsync":"sometimes"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		site, err := Parse(data)
		if err != nil {
			return
		}
		if err := site.Validate(); err != nil {
			t.Fatalf("Parse accepted a config Validate rejects: %v", err)
		}
		// PersistOptions must assemble without panicking for any valid
		// config (Validate guarantees the fsync policy parses).
		_ = site.PersistOptions()
		out, err := json.Marshal(site)
		if err != nil {
			t.Fatalf("accepted config does not marshal: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("round trip parse failed: %v\nconfig: %s", err, out)
		}
		if again, err := json.Marshal(back); err != nil || string(again) != string(out) {
			t.Fatalf("round trip changed config:\n got %s\nwant %s (err %v)", again, out, err)
		}
	})
}
