package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical stage names. Every span recorded anywhere in the stack uses
// one of these; DESIGN.md section 9 is the authoritative table. Fixed
// names keep aggregation trivial (group by stage, no cardinality
// explosion) and let the check harness assert full coverage.
const (
	// StageRequest is the root span of every trace: one served request.
	StageRequest = "request"
	// StageAdmission is the shedder's admit/reject decision.
	StageAdmission = "admission"
	// StageDeadline is deadline extraction from the request header and
	// context construction.
	StageDeadline = "deadline"
	// StageLockWaitRead is time queued for the cache's shared lock.
	StageLockWaitRead = "lock_wait_read"
	// StageLockWaitWrite is time queued for the cache's exclusive lock.
	StageLockWaitWrite = "lock_wait_write"
	// StageSupersetScan is Algorithm 1 phase 1: the subset test sweep.
	StageSupersetScan = "superset_scan"
	// StageMergeScan is Algorithm 1 phase 2: prefilter plus exact
	// Jaccard distance over merge candidates.
	StageMergeScan = "merge_scan"
	// StageHit covers hit bookkeeping (LRU touch, stats, commit).
	StageHit = "hit"
	// StageMerge covers building and installing a merged image.
	StageMerge = "merge"
	// StageInsert covers materialising a fresh image.
	StageInsert = "insert"
	// StageEvict is the LRU eviction sweep after a merge or insert.
	StageEvict = "evict"
	// StageWALAppend is the synchronous write-ahead-log append inside
	// the commit hook.
	StageWALAppend = "wal_append"
	// StageFsyncWait is the group-commit wait for the WAL to be durable
	// before acking.
	StageFsyncWait = "fsync_wait"
	// StageClusterDispatch is head-to-worker image dispatch at a site.
	StageClusterDispatch = "cluster_dispatch"

	// StageFleetRoute is the fleet master's routing decision: hashing
	// the spec signature onto the agent ring and assembling the
	// candidate order. Fleet stages are recorded only on a master hop,
	// so they sit outside CanonicalStages — whose contract is the
	// single-node serving path the trace-sim harness audits 1:1.
	StageFleetRoute = "fleet_route"
	// StageFleetForward is one master-to-agent forwarding attempt; a
	// request that fails over records one span per candidate tried.
	StageFleetForward = "fleet_forward"
)

// CanonicalStages returns every stage name the stack can record, root
// first. The check harness asserts a seeded run covers all of them.
func CanonicalStages() []string {
	return []string{
		StageRequest, StageAdmission, StageDeadline,
		StageLockWaitRead, StageLockWaitWrite,
		StageSupersetScan, StageMergeScan,
		StageHit, StageMerge, StageInsert, StageEvict,
		StageWALAppend, StageFsyncWait, StageClusterDispatch,
	}
}

// TraceID identifies one request's trace across process hops. It
// marshals as a 16-hex-digit string so JavaScript consumers never see a
// >2^53 integer.
type TraceID uint64

// String renders the ID in the wire format (16 lowercase hex digits).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a hex string.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the hex-string form (and, leniently, a bare
// number from hand-written fixtures).
func (id *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, perr := ParseTraceID(s)
		if perr != nil {
			return perr
		}
		*id = v
		return nil
	}
	var n uint64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("telemetry: trace id must be a hex string or number: %s", b)
	}
	*id = TraceID(n)
	return nil
}

// ParseTraceID parses the 16-hex-digit wire form.
func ParseTraceID(s string) (TraceID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("telemetry: trace id %q: want 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: trace id %q: %v", s, err)
	}
	return TraceID(v), nil
}

// Attr is one key/value annotation on a span. Exactly one of Num/Str is
// meaningful; numeric attributes dominate (scan counts, byte totals).
type Attr struct {
	Key string `json:"k"`
	Num int64  `json:"n,omitempty"`
	Str string `json:"s,omitempty"`
}

// SpanRef indexes a span inside its trace. Refs stay valid for the
// life of the trace; SpanNone marks "no span" and every ActiveTrace
// method treats it as a no-op.
type SpanRef int32

// SpanNone is the invalid span reference.
const SpanNone SpanRef = -1

// Span is one timed stage of a request. Start/End are nanoseconds
// relative to the trace's start, so a dumped trace is self-contained
// and diffable across deterministic replays.
type Span struct {
	Stage  string  `json:"stage"`
	Parent SpanRef `json:"parent"` // index of the parent span; -1 for the root
	Start  int64   `json:"start_ns"`
	End    int64   `json:"end_ns"`
	Attrs  []Attr  `json:"attrs,omitempty"`
}

// Duration returns the span's length in nanoseconds.
func (s *Span) Duration() int64 { return s.End - s.Start }

// Trace is one finished request trace: the span tree plus identity and
// outcome. Spans[0] is always the root (StageRequest).
type Trace struct {
	ID TraceID `json:"trace_id"`
	// RemoteParent links a propagated trace to the caller: it is the
	// caller's span index plus one as carried on the wire, zero when the
	// trace originated here.
	RemoteParent uint32 `json:"remote_parent,omitempty"`
	// StartWall is the trace start in Unix nanoseconds (logical under
	// the sim clock).
	StartWall     int64 `json:"start_unix_ns"`
	DurationNanos int64 `json:"duration_ns"`
	// Outcome is the request's fate: "hit", "merge", "insert", "shed",
	// "degraded", "timeout", "canceled", or "error".
	Outcome string `json:"outcome"`
	Err     string `json:"error,omitempty"`
	// Seq is the manager's logical clock for served requests (zero when
	// the request never reached the cache).
	Seq uint64 `json:"seq,omitempty"`
	// Kept records why the tail-sampling ring retained the trace
	// ("slow" or "interesting"); empty outside a ring dump.
	Kept  string `json:"kept,omitempty"`
	Spans []Span `json:"spans"`
}

// Root returns the root span.
func (t *Trace) Root() *Span { return &t.Spans[0] }

// TraceSink receives finished traces. Keep must copy what it retains:
// the *Trace is pooled and reused after the call returns.
type TraceSink interface {
	Keep(t *Trace)
}

// discardSink drops every trace; used when a SpanTracer exists only to
// time spans whose retention happens elsewhere.
type discardSink struct{}

func (discardSink) Keep(*Trace) {}

// DiscardSink returns a sink that drops all traces.
func DiscardSink() TraceSink { return discardSink{} }

// SpanTracer mints ActiveTraces. The zero cost path is the nil
// *SpanTracer / nil *ActiveTrace: every method is nil-receiver safe, so
// uninstrumented callers pay one predictable branch per span site.
//
// Clock and ID generation are injectable so the check harness can run
// the whole stack on a logical clock and seeded IDs, making trace dumps
// byte-identical across same-seed runs.
type SpanTracer struct {
	sink    TraceSink
	clock   func() int64 // monotonic nanos; also stamps StartWall
	newID   func() uint64
	pool    sync.Pool
	started atomic.Uint64
}

// NewSpanTracer creates a tracer delivering finished traces to sink
// (DiscardSink when nil). The default clock is the wall clock and the
// default ID generator draws from crypto/rand.
func NewSpanTracer(sink TraceSink) *SpanTracer {
	if sink == nil {
		sink = DiscardSink()
	}
	t := &SpanTracer{
		sink:  sink,
		clock: func() int64 { return time.Now().UnixNano() },
		newID: randomID,
	}
	t.pool.New = func() any { return &ActiveTrace{} }
	return t
}

func randomID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("telemetry: id entropy unavailable: %v", err))
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1 // zero means "mint one"; never hand it out
	}
	return id
}

// SetClock replaces the tracer's clock (nanoseconds, monotone
// non-decreasing). For deterministic harness runs.
func (t *SpanTracer) SetClock(fn func() int64) {
	if fn != nil {
		t.clock = fn
	}
}

// SetIDGen replaces the trace ID generator (must never return zero).
// For deterministic harness runs.
func (t *SpanTracer) SetIDGen(fn func() uint64) {
	if fn != nil {
		t.newID = fn
	}
}

// Started returns the number of traces started — the denominator for
// the ring's retention accounting.
func (t *SpanTracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Start begins a trace and its root span. id == 0 mints a fresh ID;
// a non-zero id with remoteParent continues a propagated trace (the
// X-Landlord-Trace hop). Safe on a nil tracer (returns nil).
func (t *SpanTracer) Start(id TraceID, remoteParent uint32) *ActiveTrace {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	at := t.pool.Get().(*ActiveTrace)
	at.tr = t
	if id == 0 {
		id = TraceID(t.newID())
	}
	now := t.clock()
	at.base = now
	at.t.ID = id
	at.t.RemoteParent = remoteParent
	at.t.StartWall = now
	at.t.DurationNanos = 0
	at.t.Outcome = ""
	at.t.Err = ""
	at.t.Seq = 0
	at.t.Kept = ""
	if cap(at.t.Spans) > 0 {
		at.t.Spans = at.t.Spans[:0]
	}
	at.t.Spans = append(at.t.Spans, Span{Stage: StageRequest, Parent: SpanNone})
	return at
}

// ActiveTrace is a trace under construction. It is owned by one request
// flow at a time (the same discipline core.Manager already demands) and
// is returned to the tracer's pool by Finish. All methods are safe on a
// nil receiver: disabled tracing costs one branch.
type ActiveTrace struct {
	tr   *SpanTracer
	base int64
	t    Trace
}

// TraceID returns the trace's ID (zero on nil).
func (at *ActiveTrace) TraceID() TraceID {
	if at == nil {
		return 0
	}
	return at.t.ID
}

// Root returns the root span's ref.
func (at *ActiveTrace) Root() SpanRef {
	if at == nil {
		return SpanNone
	}
	return 0
}

// Begin opens a child span under parent and returns its ref.
func (at *ActiveTrace) Begin(stage string, parent SpanRef) SpanRef {
	if at == nil {
		return SpanNone
	}
	ref := SpanRef(len(at.t.Spans))
	at.t.Spans = append(at.t.Spans, Span{
		Stage:  stage,
		Parent: parent,
		Start:  at.tr.clock() - at.base,
	})
	return ref
}

// End closes the span.
func (at *ActiveTrace) End(ref SpanRef) {
	if at == nil || ref < 0 || int(ref) >= len(at.t.Spans) {
		return
	}
	at.t.Spans[ref].End = at.tr.clock() - at.base
}

// EndInt closes the span and attaches one numeric attribute.
func (at *ActiveTrace) EndInt(ref SpanRef, key string, v int64) {
	at.AttrInt(ref, key, v)
	at.End(ref)
}

// AttrInt attaches a numeric attribute to an open or closed span.
func (at *ActiveTrace) AttrInt(ref SpanRef, key string, v int64) {
	if at == nil || ref < 0 || int(ref) >= len(at.t.Spans) {
		return
	}
	sp := &at.t.Spans[ref]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Num: v})
}

// AttrStr attaches a string attribute to an open or closed span.
func (at *ActiveTrace) AttrStr(ref SpanRef, key, v string) {
	if at == nil || ref < 0 || int(ref) >= len(at.t.Spans) {
		return
	}
	sp := &at.t.Spans[ref]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: v})
}

// Finish closes the root span, stamps the outcome, hands the trace to
// the sink, and returns the ActiveTrace to the pool. The ActiveTrace
// must not be used afterwards.
func (at *ActiveTrace) Finish(outcome, errMsg string, seq uint64) {
	if at == nil {
		return
	}
	end := at.tr.clock() - at.base
	at.t.Spans[0].End = end
	at.t.DurationNanos = end
	at.t.Outcome = outcome
	at.t.Err = errMsg
	at.t.Seq = seq
	tr := at.tr
	tr.sink.Keep(&at.t)
	// Clear per-span attrs before pooling so reuse cannot leak a prior
	// request's annotations; the spans slice capacity is retained.
	for i := range at.t.Spans {
		at.t.Spans[i].Attrs = at.t.Spans[i].Attrs[:0]
	}
	at.tr = nil
	tr.pool.Put(at)
}

// CopyTrace deep-copies t, detaching spans and attrs from pooled
// storage. Sinks that retain traces use it.
func CopyTrace(t *Trace) Trace {
	out := *t
	out.Spans = make([]Span, len(t.Spans))
	copy(out.Spans, t.Spans)
	for i := range out.Spans {
		if len(out.Spans[i].Attrs) > 0 {
			out.Spans[i].Attrs = append([]Attr(nil), out.Spans[i].Attrs...)
		} else {
			out.Spans[i].Attrs = nil
		}
	}
	return out
}

// ---- context propagation ----

type traceCtxKey struct{}

// ContextWithTrace attaches an ActiveTrace to ctx so downstream layers
// (client, cluster) can continue the trace across hops. A nil trace
// returns ctx unchanged.
func ContextWithTrace(ctx context.Context, at *ActiveTrace) context.Context {
	if at == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, at)
}

// TraceFromContext returns the ActiveTrace attached to ctx, or nil.
func TraceFromContext(ctx context.Context) *ActiveTrace {
	at, _ := ctx.Value(traceCtxKey{}).(*ActiveTrace)
	return at
}

// ---- wire propagation ----

// TraceHeaderName carries trace context across process hops, W3C
// traceparent style: `<16-hex trace id>-<8-hex parent ref>-<2-hex
// flags>`. The parent ref is the sender's span index plus one (so the
// root encodes as 1 and 0 means "no parent"); flags are always 01
// (sampled) — sampling here is tail-based, so heads never opt out.
const TraceHeaderName = "X-Landlord-Trace"

// FormatTraceHeader renders the wire form for a hop whose remote parent
// is the given span of the trace.
func FormatTraceHeader(id TraceID, parent SpanRef) string {
	enc := uint32(0)
	if parent >= 0 {
		enc = uint32(parent) + 1
	}
	return fmt.Sprintf("%016x-%08x-01", uint64(id), enc)
}

// ParseTraceHeader parses the wire form. ok is false (and the values
// zero) for an absent or malformed header: the receiver then starts a
// fresh trace rather than failing the request.
func ParseTraceHeader(s string) (id TraceID, parent uint32, ok bool) {
	if len(s) != 16+1+8+1+2 || s[16] != '-' || s[25] != '-' {
		return 0, 0, false
	}
	idv, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil || idv == 0 {
		return 0, 0, false
	}
	pv, err := strconv.ParseUint(s[17:25], 16, 32)
	if err != nil {
		return 0, 0, false
	}
	if _, err := strconv.ParseUint(s[26:], 16, 8); err != nil {
		return 0, 0, false
	}
	return TraceID(idv), uint32(pv), true
}
