package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeCollector exports Go runtime health into a Registry:
// goroutine count, heap bytes, GC pause latency, and process uptime.
// ReadMemStats stops the world, so the collector is *polled* (the
// daemon's maintenance ticker calls Poll) and scrapes read the last
// snapshot — a scrape storm can never amplify into a stop-the-world
// storm.
type RuntimeCollector struct {
	mu      sync.Mutex
	started time.Time

	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcPauses   *Histogram
	gcRuns     *Counter

	lastNumGC uint32
}

// NewRuntimeCollector registers the runtime metrics in reg and returns
// the collector. Call Poll periodically to refresh.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	c := &RuntimeCollector{
		started: time.Now(),
		goroutines: reg.Gauge("landlord_go_goroutines",
			"Goroutines at the last runtime poll"),
		heapAlloc: reg.Gauge("landlord_go_heap_alloc_bytes",
			"Live heap bytes at the last runtime poll"),
		heapSys: reg.Gauge("landlord_go_heap_sys_bytes",
			"Heap bytes obtained from the OS at the last runtime poll"),
		gcPauses: reg.Histogram("landlord_go_gc_pause_seconds",
			"Stop-the-world GC pause latency",
			ExponentialBuckets(1e-6, 4, 10)),
		gcRuns: reg.Counter("landlord_go_gc_runs_total",
			"Completed GC cycles observed by the runtime poller"),
	}
	reg.GaugeFunc("landlord_uptime_seconds",
		"Seconds since the process started",
		func() float64 { return time.Since(c.started).Seconds() })
	c.Poll() // scrape-before-first-tick shows real values, not zeros
	return c
}

// Poll snapshots the runtime and feeds new GC pauses into the
// histogram. Safe for concurrent use; cheap enough for a minutes-scale
// ticker.
func (c *RuntimeCollector) Poll() {
	c.mu.Lock()
	defer c.mu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	c.goroutines.Set(float64(runtime.NumGoroutine()))
	c.heapAlloc.Set(float64(ms.HeapAlloc))
	c.heapSys.Set(float64(ms.HeapSys))

	// PauseNs is a circular buffer indexed by GC cycle; walk only the
	// cycles completed since the last poll so each pause is observed
	// exactly once (capped at the buffer length on a long gap).
	newGC := ms.NumGC - c.lastNumGC
	if newGC > uint32(len(ms.PauseNs)) {
		newGC = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < newGC; i++ {
		cycle := ms.NumGC - i
		pause := ms.PauseNs[(cycle+255)%256]
		c.gcPauses.Observe(float64(pause) / 1e9)
	}
	c.gcRuns.Add(int64(newGC))
	c.lastNumGC = ms.NumGC
}
