package telemetry

import (
	"strings"
	"testing"
)

func TestObserveExemplarLandsInRightBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("landlord_test_seconds", "test", []float64{0.01, 0.1, 1})
	h.ObserveExemplar(0.05, TraceID(0xbeef)) // bucket index 1 (le=0.1)
	h.ObserveExemplar(5, TraceID(0xcafe))    // +Inf bucket (index 3)
	h.ObserveExemplar(0.5, 0)                // zero trace id: counted, no exemplar

	if ex := h.BucketExemplar(1); ex == nil || ex.TraceID != 0xbeef || ex.Value != 0.05 {
		t.Fatalf("bucket 1 exemplar %+v", ex)
	}
	if ex := h.BucketExemplar(3); ex == nil || ex.TraceID != 0xcafe {
		t.Fatalf("+Inf exemplar %+v", ex)
	}
	if ex := h.BucketExemplar(2); ex != nil {
		t.Fatalf("bucket 2 has unexpected exemplar %+v", ex)
	}
	if ex := h.BucketExemplar(99); ex != nil {
		t.Fatalf("out-of-range bucket returned %+v", ex)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("count %d, want 3 (zero-id observation must still count)", got)
	}
	// Last write wins within a bucket.
	h.ObserveExemplar(0.06, TraceID(0xf00d))
	if ex := h.BucketExemplar(1); ex.TraceID != 0xf00d {
		t.Fatalf("exemplar not replaced: %+v", ex)
	}
}

func TestPlainExpositionOmitsExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("landlord_test_seconds", "test", []float64{0.01, 0.1, 1})
	h.ObserveExemplar(0.05, TraceID(0xbeef))

	var plain strings.Builder
	if err := reg.WriteText(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "trace_id") || strings.Contains(plain.String(), "# {") {
		t.Fatalf("plain 0.0.4 exposition leaked exemplars:\n%s", plain.String())
	}
	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	if !strings.Contains(out, `trace_id="000000000000beef"`) {
		t.Fatalf("openmetrics output missing exemplar:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("openmetrics output missing EOF marker:\n%s", out)
	}
}

func TestExemplarRoundTripThroughParseText(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("landlord_test_seconds", "test", []float64{0.01, 0.1, 1},
		Label{Key: "op", Value: "hit"})
	h.ObserveExemplar(0.05, TraceID(0xbeef))

	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	scr, err := ParseText(strings.NewReader(om.String()))
	if err != nil {
		t.Fatalf("scraping openmetrics output: %v\n%s", err, om.String())
	}
	ex, ok := scr.Exemplar("landlord_test_seconds_bucket",
		Label{Key: "op", Value: "hit"}, Label{Key: "le", Value: "0.1"})
	if !ok {
		t.Fatalf("no exemplar on the le=0.1 bucket:\n%s", om.String())
	}
	if ex.Value != 0.05 {
		t.Fatalf("exemplar value %v, want 0.05", ex.Value)
	}
	if len(ex.Labels) != 1 || ex.Labels[0].Key != "trace_id" || ex.Labels[0].Value != "000000000000beef" {
		t.Fatalf("exemplar labels %+v", ex.Labels)
	}
	if ex.Timestamp <= 0 {
		t.Fatalf("exemplar timestamp %v, want > 0", ex.Timestamp)
	}
	// The sample values themselves must parse identically to a plain
	// scrape: the exemplar is a suffix, not a format change.
	if v, ok := scr.Value("landlord_test_seconds_count", Label{Key: "op", Value: "hit"}); !ok || v != 1 {
		t.Fatalf("count sample lost: %v %v", v, ok)
	}
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	reg := NewRegistry()
	hostile := `a"b\c` + "\nnext"
	reg.Counter("landlord_escape_total", `help with \ and "quotes"`+"\nand a newline",
		Label{Key: "path", Value: hostile}).Add(3)

	for _, write := range []func(*strings.Builder) error{
		func(b *strings.Builder) error { return reg.WriteText(b) },
		func(b *strings.Builder) error { return reg.WriteOpenMetrics(b) },
	} {
		var out strings.Builder
		if err := write(&out); err != nil {
			t.Fatal(err)
		}
		scr, err := ParseText(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("scraping escaped output: %v\n%s", err, out.String())
		}
		v, ok := scr.Value("landlord_escape_total", Label{Key: "path", Value: hostile})
		if !ok || v != 3 {
			t.Fatalf("hostile label did not round-trip: %v %v\n%s", v, ok, out.String())
		}
	}
}
