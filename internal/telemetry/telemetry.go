// Package telemetry is the observability layer for the LANDLORD cache:
// structured per-request trace events, a metrics registry with
// Prometheus text exposition, and HTTP instrumentation middleware.
//
// The paper's evaluation is entirely about *operational* behaviour —
// where α sits in the 0.65–0.95 zone, how often merges beat inserts,
// how much eviction churn the cache endures — so the production
// deployment needs the same visibility at runtime that the simulation
// harness has offline. Everything here is stdlib-only and
// pay-for-what-you-use: a Manager with a nil Tracer pays one branch
// per request, and metric updates are single atomic operations.
//
// The three pieces:
//
//   - Tracer: a per-request event hook (core.Config.Tracer). Sinks
//     include a JSONL writer for offline analysis and a bounded Ring
//     served by the daemon's /v1/events endpoint.
//   - Registry: counters, gauges, and log-bucketed histograms with
//     lock-cheap updates, exposed in the Prometheus text format.
//   - Middleware: per-route HTTP request/latency/status instrumentation
//     around an http.Handler.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Candidate is one merge candidate examined by Algorithm 1's phase 2,
// with its exact Jaccard distance from the request.
type Candidate struct {
	ImageID  uint64  `json:"image_id"`
	Distance float64 `json:"distance"`
}

// Event is one request's journey through the cache manager: which
// branch of Algorithm 1 satisfied it, how much work the scans did, and
// what it cost. The manager emits exactly one Event per successful
// Request call.
type Event struct {
	// Seq is the manager's logical clock at the request (1-based).
	Seq uint64 `json:"seq"`
	// Op is the outcome: "hit", "merge", or "insert".
	Op string `json:"op"`

	// SpecPackages and RequestBytes size the submitted specification.
	SpecPackages int   `json:"spec_packages"`
	RequestBytes int64 `json:"request_bytes"`

	// ImageID/ImageVersion/ImageSize identify the image that served the
	// request (after any merge).
	ImageID      uint64 `json:"image_id"`
	ImageVersion uint64 `json:"image_version"`
	ImageSize    int64  `json:"image_size"`
	// BytesWritten is the image bytes written by this request (zero for
	// a hit; the whole rewritten image for a merge or insert).
	BytesWritten int64 `json:"bytes_written"`

	// SupersetScanned counts images examined by the phase-1 superset
	// scan before it concluded.
	SupersetScanned int `json:"superset_scanned"`
	// PrefilterAccepted/PrefilterRejected count images the MinHash
	// prefilter passed to (or spared from) exact distance computation
	// in phase 2. Both are zero when the prefilter is disabled or the
	// request hit in phase 1.
	PrefilterAccepted int `json:"prefilter_accepted"`
	PrefilterRejected int `json:"prefilter_rejected"`
	// Candidates are the merge candidates under α, closest first when
	// candidate sorting is enabled, each with its exact distance.
	Candidates []Candidate `json:"candidates,omitempty"`

	// Evicted/EvictedBytes account the LRU evictions this request
	// triggered.
	Evicted      int   `json:"evicted"`
	EvictedBytes int64 `json:"evicted_bytes"`

	// CachedBytes and Images snapshot the cache after the request.
	CachedBytes int64 `json:"cached_bytes"`
	Images      int   `json:"images"`

	// DurationNanos is the wall-clock cost of the Request call.
	DurationNanos int64 `json:"duration_ns"`

	// TraceID links the event to its span trace when the request was
	// traced (zero otherwise).
	TraceID TraceID `json:"trace_id,omitempty"`
}

// Tracer receives one Event per cache request. Implementations must be
// safe for use from the single goroutine driving a Manager; sinks
// shared across managers (JSONLSink, Ring) serialize internally.
// The *Event is only valid for the duration of the call: retain a copy,
// not the pointer.
type Tracer interface {
	Trace(ev *Event)
}

// multi fans one event out to several tracers.
type multi []Tracer

func (m multi) Trace(ev *Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// Multi combines tracers into one, dropping nils. It returns nil when
// no non-nil tracer remains, so Multi(nil, nil) keeps the fast path.
func Multi(tracers ...Tracer) Tracer {
	var out multi
	for _, t := range tracers {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

// JSONLSink writes each event as one JSON line, the trace format the
// analysis tooling (and `landlord-sim -events`) consumes. Safe for
// concurrent use; the first write error is retained and subsequent
// events are dropped.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink creates a sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Trace implements Tracer.
func (s *JSONLSink) Trace(ev *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Ring is a bounded in-memory event buffer keeping the most recent
// events — the backing store of the daemon's /v1/events endpoint. Safe
// for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // index the next event is written at
	total uint64 // events ever traced
}

// NewRing creates a ring retaining up to n events (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Trace implements Tracer, storing a copy of the event.
func (r *Ring) Trace(ev *Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, *ev)
	} else {
		r.buf[r.next] = *ev
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Events returns up to limit of the most recent events, oldest first.
// limit <= 0 returns everything retained.
func (r *Ring) Events(limit int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Event, 0, limit)
	// Oldest retained event sits at r.next once the buffer has wrapped.
	start := 0
	if n == cap(r.buf) {
		start = r.next
	}
	for i := n - limit; i < n; i++ {
		out = append(out, r.buf[(start+i)%n])
	}
	return out
}

// EventsWhere returns up to limit of the most recent events whose Op
// matches outcome ("" matches everything), oldest first. limit <= 0
// means no limit. It backs the /v1/events ?outcome=&limit= filters.
func (r *Ring) EventsWhere(outcome string, limit int) []Event {
	all := r.Events(0)
	if outcome != "" {
		kept := all[:0]
		for _, ev := range all {
			if ev.Op == outcome {
				kept = append(kept, ev)
			}
		}
		all = kept
	}
	if limit > 0 && limit < len(all) {
		all = all[len(all)-limit:]
	}
	return all
}

// Total returns the number of events ever traced (retained or not).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
