package telemetry

import (
	"fmt"
	"net/http"
	"time"
)

// Middleware instruments an HTTP handler with per-route metrics in
// reg: a request counter labelled by route and status class
// (landlord_http_requests_total) and a latency histogram labelled by
// route (landlord_http_request_duration_seconds).
func Middleware(reg *Registry, route string, next http.Handler) http.Handler {
	hist := reg.Histogram("landlord_http_request_duration_seconds",
		"HTTP request latency by route", DefaultLatencyBuckets(),
		Label{"route", route})
	// Pre-create the common status classes so scrapes show zero-valued
	// series before traffic arrives.
	classes := [6]*Counter{}
	for c := 2; c <= 5; c++ {
		classes[c] = reg.Counter("landlord_http_requests_total",
			"HTTP requests by route and status class",
			Label{"route", route}, Label{"code", fmt.Sprintf("%dxx", c)})
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		hist.Observe(time.Since(start).Seconds())
		class := sw.Status() / 100
		if class >= 2 && class <= 5 {
			classes[class].Inc()
		} else {
			reg.Counter("landlord_http_requests_total",
				"HTTP requests by route and status class",
				Label{"route", route}, Label{"code", fmt.Sprintf("%dxx", class)}).Inc()
		}
	})
}

// statusWriter captures the response status code (200 when the handler
// never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Status returns the captured status code.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
