package telemetry

import (
	"sort"
	"sync"
)

// TraceRing is the always-on tail-sampling store for finished traces.
// Head sampling (deciding at request start whether to record) cannot
// keep the traces that matter — the p99 stragglers and the failures —
// because their fate is unknown until the end. So every request is
// traced, and retention is decided at Finish time:
//
//   - the slowest slowN traces by root duration are kept (the tail), and
//   - every "interesting" trace — any outcome other than a served
//     hit/merge/insert — is kept in a separate FIFO ring, so a burst of
//     fast requests can never wash out the errors.
//
// Both pools are bounded; memory is O(slowN + interestingN) traces.
// Safe for concurrent Keep and Dump.
type TraceRing struct {
	mu          sync.Mutex
	slow        []Trace // unordered; min replaced on overflow
	slowN       int
	interesting []Trace // FIFO ring
	intNext     int
	intN        int
	total       uint64 // traces ever offered
}

// KeptSlow and KeptInteresting are the values of Trace.Kept in a dump.
const (
	KeptSlow        = "slow"
	KeptInteresting = "interesting"
)

// interestingOutcome reports whether a trace must be retained
// regardless of duration.
func interestingOutcome(t *Trace) bool {
	if t.Err != "" {
		return true
	}
	switch t.Outcome {
	case "hit", "merge", "insert":
		return false
	}
	return true
}

// NewTraceRing creates a ring keeping the slowest slowN traces and up
// to interestingN error/shed/degraded traces (minimum 1 each).
func NewTraceRing(slowN, interestingN int) *TraceRing {
	if slowN < 1 {
		slowN = 1
	}
	if interestingN < 1 {
		interestingN = 1
	}
	return &TraceRing{
		slow:        make([]Trace, 0, slowN),
		slowN:       slowN,
		interesting: make([]Trace, 0, interestingN),
		intN:        interestingN,
	}
}

// Keep implements TraceSink. The trace is deep-copied; the argument is
// pooled storage owned by the caller.
func (r *TraceRing) Keep(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if interestingOutcome(t) {
		c := CopyTrace(t)
		c.Kept = KeptInteresting
		if len(r.interesting) < r.intN {
			r.interesting = append(r.interesting, c)
		} else {
			r.interesting[r.intNext] = c
		}
		r.intNext = (r.intNext + 1) % r.intN
		return
	}
	if len(r.slow) < r.slowN {
		c := CopyTrace(t)
		c.Kept = KeptSlow
		r.slow = append(r.slow, c)
		return
	}
	// Replace the current minimum if this trace is slower. Linear scan:
	// slowN is small (tens) and Keep is off the request's critical path
	// only by a mutex, so simplicity wins over a heap.
	min := 0
	for i := 1; i < len(r.slow); i++ {
		if r.slow[i].DurationNanos < r.slow[min].DurationNanos {
			min = i
		}
	}
	if t.DurationNanos <= r.slow[min].DurationNanos {
		return
	}
	c := CopyTrace(t)
	c.Kept = KeptSlow
	r.slow[min] = c
}

// Dump returns up to limit retained traces, slowest first (limit <= 0
// returns everything). Interesting traces sort by the same duration
// key, interleaved with the slow pool.
func (r *TraceRing) Dump(limit int) []Trace {
	r.mu.Lock()
	out := make([]Trace, 0, len(r.slow)+len(r.interesting))
	out = append(out, r.slow...)
	out = append(out, r.interesting...)
	r.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].DurationNanos != out[b].DurationNanos {
			return out[a].DurationNanos > out[b].DurationNanos
		}
		// Stable total order for deterministic replays.
		if out[a].StartWall != out[b].StartWall {
			return out[a].StartWall < out[b].StartWall
		}
		return out[a].ID < out[b].ID
	})
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

// Get returns the retained trace with the given ID. When both pools
// hold a trace with the ID (a propagated ID reused across hops), the
// slowest wins.
func (r *TraceRing) Get(id TraceID) (Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best Trace
	found := false
	for _, pool := range [][]Trace{r.slow, r.interesting} {
		for i := range pool {
			if pool[i].ID == id && (!found || pool[i].DurationNanos > best.DurationNanos) {
				best = pool[i]
				found = true
			}
		}
	}
	return best, found
}

// Total returns the number of traces ever offered to the ring.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Kept returns how many traces are currently retained.
func (r *TraceRing) Kept() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slow) + len(r.interesting)
}
