package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestMultiDropsNils(t *testing.T) {
	if got := Multi(nil, nil); got != nil {
		t.Fatalf("Multi(nil, nil) = %v, want nil", got)
	}
	ring := NewRing(4)
	if got := Multi(nil, ring); got != Tracer(ring) {
		t.Fatalf("Multi(nil, ring) should return ring itself, got %T", got)
	}
	ring2 := NewRing(4)
	m := Multi(ring, nil, ring2)
	m.Trace(&Event{Op: "hit"})
	if ring.Total() != 1 || ring2.Total() != 1 {
		t.Fatalf("fan-out missed a sink: %d, %d", ring.Total(), ring2.Total())
	}
}

func TestJSONLSinkEmitsOneLinePerEvent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for i := 1; i <= 3; i++ {
		sink.Trace(&Event{Seq: uint64(i), Op: "insert", SpecPackages: i,
			Candidates: []Candidate{{ImageID: 7, Distance: 0.25}}})
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		n++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", n, err)
		}
		if ev.Seq != uint64(n) || ev.Op != "insert" {
			t.Fatalf("line %d decoded to %+v", n, ev)
		}
		if len(ev.Candidates) != 1 || ev.Candidates[0].Distance != 0.25 {
			t.Fatalf("line %d candidates: %+v", n, ev.Candidates)
		}
	}
	if n != 3 {
		t.Fatalf("wrote %d lines, want 3", n)
	}
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	sink := NewJSONLSink(failWriter{})
	sink.Trace(&Event{Op: "hit"})
	if sink.Err() == nil {
		t.Fatal("expected write error")
	}
	sink.Trace(&Event{Op: "hit"}) // must not panic or reset the error
	if sink.Err() == nil {
		t.Fatal("error lost")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "fail" }

func TestRingRetainsMostRecent(t *testing.T) {
	r := NewRing(3)
	if got := r.Events(0); len(got) != 0 {
		t.Fatalf("empty ring returned %d events", len(got))
	}
	for i := 1; i <= 5; i++ {
		r.Trace(&Event{Seq: uint64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	got := r.Events(0)
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, ev := range got {
		if want := uint64(3 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first)", i, ev.Seq, want)
		}
	}
}

func TestRingLimit(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 6; i++ {
		r.Trace(&Event{Seq: uint64(i)})
	}
	got := r.Events(2)
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("Events(2) = %+v, want seqs 5,6", got)
	}
	if got := r.Events(100); len(got) != 6 {
		t.Fatalf("Events(100) returned %d, want 6", len(got))
	}
}

func TestRingCopiesEvents(t *testing.T) {
	r := NewRing(2)
	ev := &Event{Seq: 1, Op: "hit"}
	r.Trace(ev)
	ev.Op = "mutated"
	if got := r.Events(0)[0].Op; got != "hit" {
		t.Fatalf("ring retained caller's pointer: op = %q", got)
	}
}

func TestEventJSONSchema(t *testing.T) {
	// The JSONL schema is part of the documented observability surface
	// (README); keep the field names stable.
	data, err := json.Marshal(&Event{Op: "merge", Candidates: []Candidate{{ImageID: 1, Distance: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"seq"`, `"op"`, `"spec_packages"`, `"request_bytes"`, `"image_id"`,
		`"image_version"`, `"image_size"`, `"bytes_written"`, `"superset_scanned"`,
		`"prefilter_accepted"`, `"prefilter_rejected"`, `"candidates"`,
		`"evicted"`, `"evicted_bytes"`, `"cached_bytes"`, `"images"`, `"duration_ns"`,
	} {
		if !strings.Contains(string(data), field) {
			t.Errorf("event JSON missing field %s: %s", field, data)
		}
	}
}

func TestRingEventsWhere(t *testing.T) {
	r := NewRing(8)
	ops := []string{"hit", "merge", "hit", "insert", "hit", "merge"}
	for i, op := range ops {
		r.Trace(&Event{Seq: uint64(i + 1), Op: op})
	}
	hits := r.EventsWhere("hit", 0)
	if len(hits) != 3 || hits[0].Seq != 1 || hits[2].Seq != 5 {
		t.Fatalf("EventsWhere(hit) = %+v", hits)
	}
	// Limit keeps the most recent matches, oldest-first order.
	if got := r.EventsWhere("hit", 2); len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 5 {
		t.Fatalf("EventsWhere(hit, 2) = %+v", got)
	}
	if got := r.EventsWhere("", 2); len(got) != 2 || got[1].Seq != 6 {
		t.Fatalf("EventsWhere(\"\", 2) = %+v", got)
	}
	if got := r.EventsWhere("shed", 0); len(got) != 0 {
		t.Fatalf("EventsWhere(shed) = %+v", got)
	}
}

func TestRingConcurrentTraceAndFilter(t *testing.T) {
	// Writers race the read paths; the -race CI job runs this.
	r := NewRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := []string{"hit", "merge", "insert"}
			for i := 0; i < 500; i++ {
				r.Trace(&Event{Seq: uint64(g*1000 + i), Op: ops[i%3]})
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Events(8)
				_ = r.EventsWhere("hit", 4)
			}
		}()
	}
	wg.Wait()
	if r.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", r.Total())
	}
}
