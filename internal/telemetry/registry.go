package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" dimension of a metric series.
type Label struct {
	Key, Value string
}

// Registry holds named metric families and renders them in the
// Prometheus text exposition format. Metric lookups take a read lock;
// updates on the returned Counter/Gauge/Histogram handles are single
// atomic operations, so hot paths should hold onto the handle rather
// than re-looking it up per event.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// family is every series sharing one metric name.
type family struct {
	name, help, typ string
	series          map[string]any // Counter | Gauge | gaugeFunc | Histogram, by label signature
	order           []string
	labels          map[string][]Label
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta (which must be non-negative).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc func() float64

// histShards bounds write contention on one histogram series: each
// observation lands in a shard picked by hashing the observed value,
// and shards are summed only at scrape time.
const histShards = 8

type histShard struct {
	count atomic.Int64
	sum   atomic.Uint64 // float64 bits
	bins  []atomic.Int64
}

// Histogram is a fixed-bucket histogram with lock-free observation.
// Buckets follow Prometheus "le" semantics: bin i counts observations
// v <= bounds[i], plus one overflow bin for +Inf.
type Histogram struct {
	bounds []float64
	shards [histShards]*histShard
	// ex holds one exemplar per bucket (last write wins) linking the
	// bucket to a concrete trace ID — how an operator goes from "the
	// p99 bucket is hot" to one inspectable trace.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar ties one observation to the trace that produced it.
type Exemplar struct {
	Value     float64
	TraceID   TraceID
	UnixNanos int64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, ex: make([]atomic.Pointer[Exemplar], len(bounds)+1)}
	for i := range h.shards {
		h.shards[i] = &histShard{bins: make([]atomic.Int64, len(bounds)+1)}
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Cheap stateless shard selection: mix the value's bits so
	// concurrent observers of different values rarely collide.
	x := math.Float64bits(v)
	x ^= x >> 33
	x *= 0x9e3779b97f4a7c15
	sh := h.shards[(x>>59)%histShards]

	i := sort.SearchFloat64s(h.bounds, v)
	sh.bins[i].Add(1)
	sh.count.Add(1)
	for {
		old := sh.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if sh.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when id is non-zero, stamps
// the bucket the value lands in with an exemplar linking to that trace.
// Last write wins per bucket: recency beats completeness for "show me
// a trace from this bucket".
func (h *Histogram) ObserveExemplar(v float64, id TraceID) {
	h.Observe(v)
	if id == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.ex[i].Store(&Exemplar{Value: v, TraceID: id, UnixNanos: time.Now().UnixNano()})
}

// BucketExemplar returns the exemplar for bucket i (same indexing as
// binCounts: len(bounds) is the +Inf bucket), or nil.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.ex) {
		return nil
	}
	return h.ex[i].Load()
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for _, sh := range h.shards {
		n += sh.count.Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	var s float64
	for _, sh := range h.shards {
		s += math.Float64frombits(sh.sum.Load())
	}
	return s
}

// binCounts sums the per-shard bins (len(bounds)+1 entries).
func (h *Histogram) binCounts() []int64 {
	out := make([]int64, len(h.bounds)+1)
	for _, sh := range h.shards {
		for i := range sh.bins {
			out[i] += sh.bins[i].Load()
		}
	}
	return out
}

// ExponentialBuckets returns n strictly increasing bucket bounds
// starting at start and growing by factor — the log-spaced grid latency
// histograms want. start must be positive and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: invalid exponential buckets (start=%v factor=%v n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets is the registry's standard latency grid:
// 18 log-spaced buckets from 10µs to ~1.3s (doubling).
func DefaultLatencyBuckets() []float64 {
	return ExponentialBuckets(10e-6, 2, 18)
}

// canonical sorts labels by key and renders the series signature
// (`{k1="v1",k2="v2"}`, or "" with no labels).
func canonical(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), ls
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes HELP text per the exposition format: backslash
// and newline only (quotes are legal in help).
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the series for (name, labels), creating family and
// series via make on a miss. It panics when the name is already
// registered with a different metric type: that is a programming
// error, not a runtime condition.
func (r *Registry) lookup(name, help, typ string, labels []Label, make func() any) any {
	sig, ls := canonical(labels)
	r.mu.RLock()
	f := r.families[name]
	if f != nil {
		if s, ok := f.series[sig]; ok {
			ft := f.typ
			r.mu.RUnlock()
			if ft != typ {
				panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, ft))
			}
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ,
			series: map[string]any{}, labels: map[string][]Label{}}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	if s, ok := f.series[sig]; ok {
		return s
	}
	s := make()
	f.series[sig] = s
	f.labels[sig] = ls
	f.order = append(f.order, sig)
	return s
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, "counter", labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, "gauge", labels, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge computed by fn at scrape time — for
// values derived from live state (image counts, cache efficiency)
// rather than accumulated. Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	sig, ls := canonical(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: "gauge",
			series: map[string]any{}, labels: map[string][]Label{}}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != "gauge" {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as gauge (was %s)", name, f.typ))
	}
	if _, ok := f.series[sig]; !ok {
		f.order = append(f.order, sig)
		f.labels[sig] = ls
	}
	f.series[sig] = gaugeFunc(fn)
}

// Histogram returns the histogram series for (name, labels) with the
// given bucket bounds, creating it on first use. Bounds must be
// strictly increasing; later calls for an existing series ignore
// bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bound", name))
	}
	bcopy := append([]float64(nil), bounds...)
	return r.lookup(name, help, "histogram", labels, func() any { return newHistogram(bcopy) }).(*Histogram)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Exemplars are omitted: 0.0.4
// scrapers reject the suffix, so they live only in WriteOpenMetrics.
func (r *Registry) WriteText(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders the same families with OpenMetrics-style
// bucket exemplars (`... # {trace_id="<id>"} <value> <ts>`) and a
// closing `# EOF` marker. Serve it on Accept: application/openmetrics-text
// or an explicit query opt-in; plain scrapes keep getting WriteText.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.write(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) write(w io.Writer, exemplars bool) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, sig := range f.order {
			if err := writeSeries(w, f, sig, exemplars); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, sig string, exemplars bool) error {
	switch s := f.series[sig].(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, sig, s.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, sig, formatFloat(s.Value()))
		return err
	case gaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, sig, formatFloat(s()))
		return err
	case *Histogram:
		return writeHistogram(w, f, sig, s, exemplars)
	default:
		return fmt.Errorf("telemetry: unknown series type %T", s)
	}
}

// writeHistogram renders the _bucket/_sum/_count triple of one series.
func writeHistogram(w io.Writer, f *family, sig string, h *Histogram, exemplars bool) error {
	base := f.labels[sig]
	bins := h.binCounts()
	var cum int64
	for i, bound := range h.bounds {
		cum += bins[i]
		var ex *Exemplar
		if exemplars {
			ex = h.BucketExemplar(i)
		}
		if err := writeBucket(w, f.name, base, formatFloat(bound), cum, ex); err != nil {
			return err
		}
	}
	cum += bins[len(bins)-1]
	var ex *Exemplar
	if exemplars {
		ex = h.BucketExemplar(len(bins) - 1)
	}
	if err := writeBucket(w, f.name, base, "+Inf", cum, ex); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, sig, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, sig, cum)
	return err
}

func writeBucket(w io.Writer, name string, base []Label, le string, cum int64, ex *Exemplar) error {
	withLE := append(append([]Label(nil), base...), Label{"le", le})
	// The "le" label is rendered last (Prometheus convention), not
	// re-sorted into the base labels.
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range withLE {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	if ex != nil {
		_, err := fmt.Fprintf(w, "%s_bucket%s %d # {trace_id=\"%s\"} %s %s\n",
			name, b.String(), cum, ex.TraceID,
			formatFloat(ex.Value),
			formatFloat(float64(ex.UnixNanos)/1e9))
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, b.String(), cum)
	return err
}
