package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// stepClock returns a deterministic clock ticking 1000ns per call.
func stepClock() func() int64 {
	var now int64
	return func() int64 {
		now += 1000
		return now
	}
}

// captureSink retains deep copies of every finished trace.
type captureSink struct {
	mu     sync.Mutex
	traces []Trace
}

func (s *captureSink) Keep(t *Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces = append(s.traces, CopyTrace(t))
}

func TestSpanTreeShape(t *testing.T) {
	sink := &captureSink{}
	tr := NewSpanTracer(sink)
	tr.SetClock(stepClock())
	tr.SetIDGen(func() uint64 { return 42 })

	at := tr.Start(0, 0)
	if at.TraceID() != 42 {
		t.Fatalf("minted id %d, want 42", at.TraceID())
	}
	scan := at.Begin(StageSupersetScan, at.Root())
	at.EndInt(scan, "scanned", 7)
	ins := at.Begin(StageInsert, at.Root())
	wal := at.Begin(StageWALAppend, ins)
	at.End(wal)
	at.AttrStr(ins, "note", "x")
	at.End(ins)
	at.Finish("insert", "", 9)

	if len(sink.traces) != 1 {
		t.Fatalf("sink saw %d traces", len(sink.traces))
	}
	got := sink.traces[0]
	if got.Outcome != "insert" || got.Seq != 9 || got.Err != "" {
		t.Fatalf("trace header %+v", got)
	}
	wantStages := []string{StageRequest, StageSupersetScan, StageInsert, StageWALAppend}
	wantParents := []SpanRef{SpanNone, 0, 0, 2}
	if len(got.Spans) != len(wantStages) {
		t.Fatalf("got %d spans, want %d", len(got.Spans), len(wantStages))
	}
	for i, sp := range got.Spans {
		if sp.Stage != wantStages[i] || sp.Parent != wantParents[i] {
			t.Fatalf("span %d = {%s parent %d}, want {%s parent %d}",
				i, sp.Stage, sp.Parent, wantStages[i], wantParents[i])
		}
		if i > 0 && (sp.Start <= 0 || sp.End < sp.Start) {
			t.Fatalf("span %d times [%d, %d] not within trace", i, sp.Start, sp.End)
		}
	}
	if got.Spans[1].Attrs[0] != (Attr{Key: "scanned", Num: 7}) {
		t.Fatalf("scan attr %+v", got.Spans[1].Attrs)
	}
	if got.DurationNanos != got.Spans[0].End {
		t.Fatalf("duration %d != root end %d", got.DurationNanos, got.Spans[0].End)
	}
}

func TestNilTracerAndNilTraceAreNoOps(t *testing.T) {
	var tr *SpanTracer
	at := tr.Start(0, 0)
	if at != nil {
		t.Fatalf("nil tracer minted a trace")
	}
	// Every method must be callable on the nil ActiveTrace.
	if at.TraceID() != 0 || at.Root() != SpanNone {
		t.Fatalf("nil trace not inert")
	}
	ref := at.Begin(StageHit, at.Root())
	if ref != SpanNone {
		t.Fatalf("nil Begin returned %d", ref)
	}
	at.AttrInt(ref, "k", 1)
	at.AttrStr(ref, "k", "v")
	at.EndInt(ref, "k", 1)
	at.End(ref)
	at.Finish("hit", "", 0)
	if tr.Started() != 0 {
		t.Fatalf("nil tracer counted starts")
	}
}

func TestNilTracePathDoesNotAllocate(t *testing.T) {
	var at *ActiveTrace
	allocs := testing.AllocsPerRun(100, func() {
		ref := at.Begin(StageHit, at.Root())
		at.AttrInt(ref, "image_id", 1)
		at.End(ref)
	})
	if allocs != 0 {
		t.Fatalf("nil-trace span site allocates %.1f per op, want 0", allocs)
	}
}

func TestPoolReuseClearsAttrs(t *testing.T) {
	sink := &captureSink{}
	tr := NewSpanTracer(sink)
	tr.SetClock(stepClock())
	seq := uint64(0)
	tr.SetIDGen(func() uint64 { seq++; return seq })

	at := tr.Start(0, 0)
	ref := at.Begin(StageMerge, at.Root())
	at.EndInt(ref, "bytes_written", 4096)
	at.Finish("merge", "", 1)

	// The pooled ActiveTrace is reused: the new trace must not carry
	// the previous request's spans or attributes.
	at2 := tr.Start(0, 0)
	if len(at2.t.Spans) != 1 {
		t.Fatalf("reused trace starts with %d spans", len(at2.t.Spans))
	}
	ref2 := at2.Begin(StageHit, at2.Root())
	if got := at2.t.Spans[ref2].Attrs; len(got) != 0 {
		t.Fatalf("reused span carries stale attrs %+v", got)
	}
	at2.Finish("hit", "", 2)

	if sink.traces[0].Spans[1].Attrs[0].Num != 4096 {
		t.Fatalf("first trace's copied attrs corrupted: %+v", sink.traces[0].Spans[1].Attrs)
	}
}

func TestConcurrentTracing(t *testing.T) {
	// Many goroutines start/annotate/finish traces against one tracer
	// and ring while another dumps: the -race CI job runs this.
	ring := NewTraceRing(8, 8)
	tr := NewSpanTracer(ring)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				at := tr.Start(0, 0)
				ref := at.Begin(StageSupersetScan, at.Root())
				at.EndInt(ref, "scanned", int64(i))
				if i%10 == 9 {
					at.Finish("error", "synthetic", 0)
				} else {
					at.Finish("hit", "", uint64(i))
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = ring.Dump(0)
			_, _ = ring.Get(TraceID(1))
			_ = ring.Kept()
		}
	}()
	wg.Wait()
	if got := tr.Started(); got != 1600 {
		t.Fatalf("started %d traces, want 1600", got)
	}
	if got := ring.Total(); got != 1600 {
		t.Fatalf("ring offered %d traces, want 1600", got)
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef12345678)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef12345678"` {
		t.Fatalf("marshal: %s", b)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil || back != id {
		t.Fatalf("unmarshal: %v %v", back, err)
	}
	// Lenient numeric form for hand-written fixtures.
	if err := json.Unmarshal([]byte("7"), &back); err != nil || back != 7 {
		t.Fatalf("numeric unmarshal: %v %v", back, err)
	}
	if err := json.Unmarshal([]byte(`"xyz"`), &back); err == nil {
		t.Fatalf("malformed hex accepted")
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	h := FormatTraceHeader(TraceID(0xabc), 0)
	if h != "0000000000000abc-00000001-01" {
		t.Fatalf("header %q", h)
	}
	id, parent, ok := ParseTraceHeader(h)
	if !ok || id != 0xabc || parent != 1 {
		t.Fatalf("parse: id=%v parent=%d ok=%v", id, parent, ok)
	}
	if h := FormatTraceHeader(TraceID(5), SpanNone); h[17:25] != "00000000" {
		t.Fatalf("SpanNone parent encoded as %q", h)
	}
	for _, bad := range []string{
		"",
		"0000000000000abc-00000001",       // missing flags
		"0000000000000abc+00000001-01",    // wrong separator
		"000000000000000g-00000001-01",    // bad hex
		"0000000000000000-00000001-01",    // zero trace id
		"0000000000000abc-0000001-012",    // shifted dashes
		"0000000000000abc-00000001-01x",   // trailing junk
		"00000000000000abc-00000001-0",    // wrong segment widths
		"0000000000000abc-00000001-zz",    // bad flags
		"0000000000000abc-zzzzzzzz-01",    // bad parent
		"0000000000000abc-00000001-01-01", // extra segment
	} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Fatalf("accepted malformed header %q", bad)
		}
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewSpanTracer(nil)
	at := tr.Start(0, 0)
	ctx := ContextWithTrace(context.Background(), at)
	if got := TraceFromContext(ctx); got != at {
		t.Fatalf("context returned %p, want %p", got, at)
	}
	if got := TraceFromContext(context.Background()); got != nil {
		t.Fatalf("empty context returned %p", got)
	}
	if ctx2 := ContextWithTrace(context.Background(), nil); TraceFromContext(ctx2) != nil {
		t.Fatalf("nil trace attached to context")
	}
	at.Finish("hit", "", 0)
}

func TestCanonicalStagesAreUniqueAndRootFirst(t *testing.T) {
	stages := CanonicalStages()
	if stages[0] != StageRequest {
		t.Fatalf("first stage %q", stages[0])
	}
	seen := map[string]bool{}
	for _, s := range stages {
		if seen[s] {
			t.Fatalf("duplicate stage %q", s)
		}
		seen[s] = true
	}
	if len(stages) != 14 {
		t.Fatalf("%d canonical stages, want 14 (update DESIGN.md section 9 too)", len(stages))
	}
}

func TestDefaultIDGenNeverZero(t *testing.T) {
	tr := NewSpanTracer(nil)
	for i := 0; i < 100; i++ {
		at := tr.Start(0, 0)
		if at.TraceID() == 0 {
			t.Fatalf("minted zero trace id")
		}
		at.Finish("hit", "", 0)
	}
}
