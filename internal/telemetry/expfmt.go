package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Scrape is a parsed Prometheus text exposition — the consumer-side
// view a monitoring system has of /metrics. Tests use it to round-trip
// the registry's output; operators can use it to postprocess scrapes.
type Scrape struct {
	// Types maps family name to its declared type ("counter", "gauge",
	// "histogram").
	Types map[string]string
	// Help maps family name to its HELP text.
	Help map[string]string
	// Samples maps a canonical series key (name plus sorted labels) to
	// its value.
	Samples map[string]float64
	// Exemplars maps a series key to its OpenMetrics exemplar, present
	// only for scrapes of WriteOpenMetrics output.
	Exemplars map[string]ScrapedExemplar
}

// ScrapedExemplar is a parsed `# {labels} value [timestamp]` exemplar.
type ScrapedExemplar struct {
	Labels    []Label
	Value     float64
	Timestamp float64 // Unix seconds; zero when absent
}

// Value looks up a sample by name and labels (order-insensitive).
func (s *Scrape) Value(name string, labels ...Label) (float64, bool) {
	sig, _ := canonical(labels)
	v, ok := s.Samples[name+sig]
	return v, ok
}

// Exemplar looks up a series' exemplar by name and labels.
func (s *Scrape) Exemplar(name string, labels ...Label) (ScrapedExemplar, bool) {
	sig, _ := canonical(labels)
	e, ok := s.Exemplars[name+sig]
	return e, ok
}

// ParseText parses a Prometheus text exposition (version 0.0.4) as a
// scraper would. It returns an error on any malformed line, so tests
// double as format validation.
func ParseText(r io.Reader) (*Scrape, error) {
	out := &Scrape{
		Types:     map[string]string{},
		Help:      map[string]string{},
		Samples:   map[string]float64{},
		Exemplars: map[string]ScrapedExemplar{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, out); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", lineno, err)
			}
			continue
		}
		if err := parseSample(line, out); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseComment(line string, out *Scrape) error {
	if line == "# EOF" {
		// OpenMetrics end-of-exposition marker.
		return nil
	}
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		rest := ""
		if len(fields) == 4 {
			rest = fields[3]
		}
		out.Help[fields[2]] = rest
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE without a type: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		out.Types[fields[2]] = fields[3]
	default:
		// Other comments are legal and ignored.
	}
	return nil
}

func parseSample(line string, out *Scrape) error {
	name := line
	rest := ""
	var labels []Label
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		var err error
		labels, rest, err = parseLabels(line[i:])
		if err != nil {
			return err
		}
	} else if i := strings.IndexAny(line, " \t"); i >= 0 {
		name = line[:i]
		rest = line[i:]
	} else {
		return fmt.Errorf("sample %q has no value", line)
	}
	if name == "" || !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	valStr := strings.TrimSpace(rest)
	// An OpenMetrics exemplar may trail the value after " # ".
	exStr := ""
	if i := strings.Index(valStr, "#"); i >= 0 {
		exStr = strings.TrimSpace(valStr[i+1:])
		valStr = strings.TrimSpace(valStr[:i])
	}
	// A timestamp may follow the value; take the first field.
	if i := strings.IndexAny(valStr, " \t"); i >= 0 {
		valStr = valStr[:i]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	sig, _ := canonical(labels)
	key := name + sig
	if _, dup := out.Samples[key]; dup {
		return fmt.Errorf("duplicate sample %q", key)
	}
	out.Samples[key] = v
	if exStr != "" {
		ex, err := parseExemplar(exStr)
		if err != nil {
			return fmt.Errorf("sample %q: %w", line, err)
		}
		out.Exemplars[key] = ex
	}
	return nil
}

// parseExemplar parses the `{k="v",...} value [timestamp]` tail of an
// OpenMetrics exemplar (the leading "# " already stripped).
func parseExemplar(s string) (ScrapedExemplar, error) {
	if len(s) == 0 || s[0] != '{' {
		return ScrapedExemplar{}, fmt.Errorf("exemplar must start with '{'")
	}
	labels, rest, err := parseLabels(s)
	if err != nil {
		return ScrapedExemplar{}, fmt.Errorf("exemplar labels: %w", err)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return ScrapedExemplar{}, fmt.Errorf("exemplar has no value")
	}
	ex := ScrapedExemplar{Labels: labels}
	if ex.Value, err = strconv.ParseFloat(fields[0], 64); err != nil {
		return ScrapedExemplar{}, fmt.Errorf("exemplar value: %v", err)
	}
	if len(fields) > 1 {
		if ex.Timestamp, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return ScrapedExemplar{}, fmt.Errorf("exemplar timestamp: %v", err)
		}
	}
	return ex, nil
}

// parseLabels consumes a `{k="v",...}` block and returns the labels
// plus the remainder of the line.
func parseLabels(s string) ([]Label, string, error) {
	if s[0] != '{' {
		return nil, "", fmt.Errorf("labels must start with '{'")
	}
	s = s[1:]
	var labels []Label
	for {
		s = strings.TrimLeft(s, " \t")
		if len(s) == 0 {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[:eq])
		if key == "" {
			return nil, "", fmt.Errorf("empty label name")
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", key)
		}
		val, rest, err := parseQuoted(s)
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", key, err)
		}
		labels = append(labels, Label{key, val})
		s = strings.TrimLeft(rest, " \t")
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

// parseQuoted consumes a double-quoted, backslash-escaped string.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func validMetricName(name string) bool {
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(name) > 0
}
