package telemetry

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "total requests").Add(41)
	reg.Counter("requests_total", "total requests").Inc() // same series
	reg.Gauge("cached_bytes", "bytes cached").Set(1.5e9)
	reg.GaugeFunc("efficiency", "cache efficiency", func() float64 { return 0.75 })
	reg.Counter("ops_total", "ops by kind", Label{"op", "hit"}).Add(7)
	reg.Counter("ops_total", "ops by kind", Label{"op", "merge"}).Add(3)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	scrape, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, buf.String())
	}
	if v, ok := scrape.Value("requests_total"); !ok || v != 42 {
		t.Fatalf("requests_total = %v, %v", v, ok)
	}
	if v, _ := scrape.Value("cached_bytes"); v != 1.5e9 {
		t.Fatalf("cached_bytes = %v", v)
	}
	if v, _ := scrape.Value("efficiency"); v != 0.75 {
		t.Fatalf("efficiency = %v", v)
	}
	if v, _ := scrape.Value("ops_total", Label{"op", "hit"}); v != 7 {
		t.Fatalf("ops_total{op=hit} = %v", v)
	}
	if v, _ := scrape.Value("ops_total", Label{"op", "merge"}); v != 3 {
		t.Fatalf("ops_total{op=merge} = %v", v)
	}
	if scrape.Types["requests_total"] != "counter" || scrape.Types["cached_bytes"] != "gauge" {
		t.Fatalf("types wrong: %v", scrape.Types)
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("m", "h", Label{"x", "1"}, Label{"y", "2"})
	b := reg.Counter("m", "h", Label{"y", "2"}, Label{"x", "1"})
	if a != b {
		t.Fatal("label order produced distinct series")
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h", Label{"path", `a"b\c` + "\nd"}).Inc()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	scrape, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("escaped label did not round-trip: %v", err)
	}
	if v, ok := scrape.Value("m", Label{"path", `a"b\c` + "\nd"}); !ok || v != 1 {
		t.Fatalf("escaped label lost: %v %v (%v)", v, ok, scrape.Samples)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("m", "h")
}

func TestExponentialBucketsMonotone(t *testing.T) {
	for _, tc := range []struct {
		start, factor float64
		n             int
	}{{10e-6, 2, 18}, {0.001, 1.5, 30}, {1, 10, 9}} {
		b := ExponentialBuckets(tc.start, tc.factor, tc.n)
		if len(b) != tc.n {
			t.Fatalf("len = %d, want %d", len(b), tc.n)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("buckets(%v,%v,%d) not strictly increasing at %d: %v",
					tc.start, tc.factor, tc.n, i, b)
			}
		}
	}
	// The default latency grid is monotone and spans µs to seconds.
	def := DefaultLatencyBuckets()
	for i := 1; i < len(def); i++ {
		if def[i] <= def[i-1] {
			t.Fatalf("default buckets not monotone at %d: %v", i, def)
		}
	}
	if def[0] > 100e-6 || def[len(def)-1] < 1 {
		t.Fatalf("default latency buckets don't span µs..s: %v", def)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	reg := NewRegistry()
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			reg.Histogram("h", "h", bounds)
		}()
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5.565; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	scrape, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("histogram exposition did not parse: %v\n%s", err, buf.String())
	}
	// Cumulative le semantics: 0.01 includes the exact boundary value.
	for _, tc := range []struct {
		le   string
		want float64
	}{{"0.01", 2}, {"0.1", 3}, {"1", 4}, {"+Inf", 5}} {
		v, ok := scrape.Value("lat_bucket", Label{"le", tc.le})
		if !ok || v != tc.want {
			t.Fatalf("lat_bucket{le=%s} = %v,%v want %v (%v)", tc.le, v, ok, tc.want, scrape.Samples)
		}
	}
	if v, _ := scrape.Value("lat_count"); v != 5 {
		t.Fatalf("lat_count = %v", v)
	}
	if v, _ := scrape.Value("lat_sum"); math.Abs(v-5.565) > 1e-9 {
		t.Fatalf("lat_sum = %v", v)
	}
	if scrape.Types["lat"] != "histogram" {
		t.Fatalf("lat type = %q", scrape.Types["lat"])
	}
}

// TestRegistryConcurrentHammer drives every metric kind from parallel
// goroutines while a scraper renders the exposition, so `go test
// -race` exercises the registry's synchronization claims.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const iters = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := []string{"hit", "merge", "insert"}
			for i := 0; i < iters; i++ {
				reg.Counter("hammer_total", "h", Label{"op", ops[i%3]}).Inc()
				reg.Gauge("hammer_gauge", "h").Set(float64(i))
				reg.Gauge("hammer_adj", "h").Add(1)
				reg.Histogram("hammer_lat", "h", DefaultLatencyBuckets()).
					Observe(float64(i%1000) * 1e-5)
				if i%100 == g {
					reg.GaugeFunc("hammer_fn", "h", func() float64 { return float64(g) })
				}
			}
		}(g)
	}
	// Concurrent scrapes must see a consistent, parseable exposition.
	var scrapeWG sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := reg.WriteText(&buf); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				if _, err := ParseText(&buf); err != nil {
					t.Errorf("mid-hammer scrape unparseable: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	scrapeWG.Wait()

	var total int64
	for _, op := range []string{"hit", "merge", "insert"} {
		total += reg.Counter("hammer_total", "h", Label{"op", op}).Value()
	}
	if want := int64(goroutines * iters); total != want {
		t.Fatalf("counter lost updates: %d, want %d", total, want)
	}
	if got := reg.Histogram("hammer_lat", "h", DefaultLatencyBuckets()).Count(); got != int64(goroutines*iters) {
		t.Fatalf("histogram lost observations: %d", got)
	}
	if got := reg.Gauge("hammer_adj", "h").Value(); got != float64(goroutines*iters) {
		t.Fatalf("gauge Add lost updates: %v", got)
	}
}

func TestMiddlewareRecordsRouteMetrics(t *testing.T) {
	reg := NewRegistry()
	ok := Middleware(reg, "/v1/request", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	}))
	fail := Middleware(reg, "/v1/prune", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/request", nil))
	}
	rec := httptest.NewRecorder()
	fail.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/prune", nil))

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	scrape, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := scrape.Value("landlord_http_requests_total",
		Label{"route", "/v1/request"}, Label{"code", "2xx"}); v != 3 {
		t.Fatalf("2xx count = %v", v)
	}
	if v, _ := scrape.Value("landlord_http_requests_total",
		Label{"route", "/v1/prune"}, Label{"code", "4xx"}); v != 1 {
		t.Fatalf("4xx count = %v", v)
	}
	if v, _ := scrape.Value("landlord_http_request_duration_seconds_count",
		Label{"route", "/v1/request"}); v != 3 {
		t.Fatalf("latency histogram count = %v", v)
	}
}
