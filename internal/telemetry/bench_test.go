package telemetry

import (
	"testing"
)

// BenchmarkNilTraceSpanSite measures the disabled-tracing cost of one
// instrumented site: a Begin/AttrInt/End triple on a nil ActiveTrace.
// This is the price every call site pays when tracing is off — it must
// stay allocation-free and a few nanoseconds.
func BenchmarkNilTraceSpanSite(b *testing.B) {
	var at *ActiveTrace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref := at.Begin(StageSupersetScan, at.Root())
		at.AttrInt(ref, "scanned", int64(i))
		at.End(ref)
	}
}

// BenchmarkActiveTraceRequest measures a full traced request shape —
// start, five spans with attributes, finish into a discard sink —
// with the pooled ActiveTrace reused across iterations.
func BenchmarkActiveTraceRequest(b *testing.B) {
	tr := NewSpanTracer(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := tr.Start(0, 0)
		adm := at.Begin(StageAdmission, at.Root())
		at.AttrStr(adm, "decision", "admit")
		at.End(adm)
		scan := at.Begin(StageSupersetScan, at.Root())
		at.EndInt(scan, "scanned", 40)
		hit := at.Begin(StageHit, at.Root())
		wal := at.Begin(StageWALAppend, hit)
		at.End(wal)
		at.EndInt(hit, "image_id", 7)
		fs := at.Begin(StageFsyncWait, at.Root())
		at.End(fs)
		at.Finish("hit", "", uint64(i))
	}
}

// BenchmarkTraceRingKeep measures tail-sampling retention cost once
// the ring is full (the steady state: most traces lose the min-replace
// comparison and are dropped without copying).
func BenchmarkTraceRingKeep(b *testing.B) {
	ring := NewTraceRing(64, 64)
	tr := NewSpanTracer(ring)
	for i := 0; i < 128; i++ {
		at := tr.Start(0, 0)
		at.Finish("hit", "", uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := tr.Start(0, 0)
		ref := at.Begin(StageSupersetScan, at.Root())
		at.End(ref)
		at.Finish("hit", "", uint64(i))
	}
}
