package telemetry

import (
	"testing"
)

// mkTrace builds a finished trace for ring tests.
func mkTrace(id TraceID, dur int64, outcome, errMsg string) *Trace {
	return &Trace{
		ID: id, StartWall: int64(id), DurationNanos: dur,
		Outcome: outcome, Err: errMsg,
		Spans: []Span{{Stage: StageRequest, Parent: SpanNone, End: dur}},
	}
}

func TestTraceRingKeepsSlowestN(t *testing.T) {
	r := NewTraceRing(3, 3)
	for i := 1; i <= 10; i++ {
		r.Keep(mkTrace(TraceID(i), int64(i*100), "hit", ""))
	}
	dump := r.Dump(0)
	if len(dump) != 3 {
		t.Fatalf("kept %d, want 3", len(dump))
	}
	for i, want := range []int64{1000, 900, 800} {
		if dump[i].DurationNanos != want || dump[i].Kept != KeptSlow {
			t.Fatalf("dump[%d] = %d ns kept=%q, want %d ns slow", i, dump[i].DurationNanos, dump[i].Kept, want)
		}
	}
	// A fast trace must not displace a retained slow one.
	r.Keep(mkTrace(99, 1, "hit", ""))
	if got := r.Dump(0); len(got) != 3 || got[2].DurationNanos != 800 {
		t.Fatalf("fast trace displaced the tail: %+v", got)
	}
	if r.Total() != 11 {
		t.Fatalf("total %d, want 11", r.Total())
	}
}

func TestTraceRingRetainsInterestingRegardlessOfSpeed(t *testing.T) {
	r := NewTraceRing(2, 2)
	// Fill the slow pool with slow served requests.
	r.Keep(mkTrace(1, 1000, "hit", ""))
	r.Keep(mkTrace(2, 2000, "merge", ""))
	// Fast failures must still be retained.
	r.Keep(mkTrace(3, 1, "shed", ""))
	r.Keep(mkTrace(4, 2, "error", "boom"))
	// An error with a served outcome is interesting because Err is set.
	r.Keep(mkTrace(5, 3, "hit", "late failure"))

	dump := r.Dump(0)
	if len(dump) != 4 { // 2 slow + 2 interesting (FIFO dropped trace 3)
		t.Fatalf("kept %d, want 4: %+v", len(dump), dump)
	}
	byID := map[TraceID]string{}
	for _, tr := range dump {
		byID[tr.ID] = tr.Kept
	}
	if byID[4] != KeptInteresting || byID[5] != KeptInteresting {
		t.Fatalf("interesting traces not retained: %v", byID)
	}
	if _, ok := byID[3]; ok {
		t.Fatalf("FIFO did not evict the oldest interesting trace: %v", byID)
	}
}

func TestTraceRingDumpLimitAndOrder(t *testing.T) {
	r := NewTraceRing(5, 5)
	// Two traces with equal durations: order falls back to StartWall.
	r.Keep(mkTrace(7, 500, "hit", ""))
	r.Keep(mkTrace(6, 500, "hit", ""))
	r.Keep(mkTrace(9, 900, "hit", ""))
	dump := r.Dump(2)
	if len(dump) != 2 || dump[0].ID != 9 || dump[1].ID != 6 {
		t.Fatalf("dump order %+v", dump)
	}
}

func TestTraceRingGet(t *testing.T) {
	r := NewTraceRing(4, 4)
	r.Keep(mkTrace(1, 100, "hit", ""))
	r.Keep(mkTrace(2, 200, "error", "x"))
	if tr, ok := r.Get(1); !ok || tr.DurationNanos != 100 {
		t.Fatalf("Get(1) = %+v %v", tr, ok)
	}
	if tr, ok := r.Get(2); !ok || tr.Kept != KeptInteresting {
		t.Fatalf("Get(2) = %+v %v", tr, ok)
	}
	if _, ok := r.Get(3); ok {
		t.Fatalf("Get(3) found a ghost")
	}
	// Same ID in both pools: the slower copy wins.
	r.Keep(mkTrace(2, 5000, "hit", ""))
	if tr, _ := r.Get(2); tr.DurationNanos != 5000 {
		t.Fatalf("Get(2) returned the faster copy: %+v", tr)
	}
}

func TestTraceRingCopiesOutOfPooledStorage(t *testing.T) {
	r := NewTraceRing(2, 2)
	tr := NewSpanTracer(r)
	tr.SetClock(stepClock())
	tr.SetIDGen(func() uint64 { return 11 })
	at := tr.Start(0, 0)
	ref := at.Begin(StageEvict, at.Root())
	at.EndInt(ref, "evicted_bytes", 777)
	at.Finish("insert", "", 3)
	// Reuse the pooled ActiveTrace for a different request; the
	// retained copy must be unaffected.
	at2 := tr.Start(0, 0)
	at2.Begin(StageHit, at2.Root())
	at2.Finish("hit", "", 4)

	got, ok := r.Get(11)
	if !ok || len(got.Spans) != 2 || got.Spans[1].Attrs[0].Num != 777 {
		t.Fatalf("retained trace corrupted by pool reuse: %+v ok=%v", got, ok)
	}
}
