package telemetry

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeCollectorRegistersAndPolls(t *testing.T) {
	reg := NewRegistry()
	rc := NewRuntimeCollector(reg)

	// Force at least one GC cycle so pause metrics move.
	runtime.GC()
	rc.Poll()

	var out strings.Builder
	if err := reg.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	scr, err := ParseText(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("scraping runtime metrics: %v\n%s", err, out.String())
	}
	if v, ok := scr.Value("landlord_go_goroutines"); !ok || v < 1 {
		t.Fatalf("goroutines = %v %v", v, ok)
	}
	if v, ok := scr.Value("landlord_go_heap_alloc_bytes"); !ok || v <= 0 {
		t.Fatalf("heap_alloc = %v %v", v, ok)
	}
	if v, ok := scr.Value("landlord_go_gc_runs_total"); !ok || v < 1 {
		t.Fatalf("gc_runs = %v %v (a forced GC must be visible)", v, ok)
	}
	if v, ok := scr.Value("landlord_go_gc_pause_seconds_count"); !ok || v < 1 {
		t.Fatalf("gc pause histogram empty: %v %v", v, ok)
	}
	if v, ok := scr.Value("landlord_uptime_seconds"); !ok || v < 0 {
		t.Fatalf("uptime = %v %v", v, ok)
	}
}

func TestRuntimeCollectorPollIsIncremental(t *testing.T) {
	reg := NewRegistry()
	rc := NewRuntimeCollector(reg)
	runtime.GC()
	rc.Poll()
	pauses := func() float64 {
		var out strings.Builder
		if err := reg.WriteText(&out); err != nil {
			t.Fatal(err)
		}
		scr, err := ParseText(strings.NewReader(out.String()))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := scr.Value("landlord_go_gc_pause_seconds_count")
		return v
	}
	first := pauses()
	// Polling again without new GC cycles must not re-count old pauses.
	rc.Poll()
	if again := pauses(); again != first {
		t.Fatalf("pause count moved without a GC: %v -> %v", first, again)
	}
	runtime.GC()
	runtime.GC()
	rc.Poll()
	if after := pauses(); after < first+2 {
		t.Fatalf("two forced GCs recorded %v pauses (had %v)", after, first)
	}
}
