package campaign

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pkggraph"
)

func testRepo(t testing.TB) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	return pkggraph.MustGenerate(cfg, 42)
}

func testConfig(t testing.TB) Config {
	return Config{
		Repo:           testRepo(t),
		Experiments:    DefaultExperiments(),
		Campaigns:      3,
		MutateFraction: 0.3,
		Seed:           1,
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(t)

	c := base
	c.Repo = nil
	if _, err := NewGenerator(c); err == nil {
		t.Error("nil repo accepted")
	}
	c = base
	c.Experiments = nil
	if _, err := NewGenerator(c); err == nil {
		t.Error("no experiments accepted")
	}
	c = base
	c.Experiments = []ExperimentConfig{{Name: "", Weight: 1, Phases: []string{"gen"}, PhasePackages: 1}}
	if _, err := NewGenerator(c); err == nil {
		t.Error("empty name accepted")
	}
	c = base
	c.Experiments = []ExperimentConfig{{Name: "x", Weight: 0, Phases: []string{"gen"}, PhasePackages: 1}}
	if _, err := NewGenerator(c); err == nil {
		t.Error("zero weight accepted")
	}
	c = base
	c.Experiments = []ExperimentConfig{{Name: "x", Weight: 1, Phases: nil, PhasePackages: 1}}
	if _, err := NewGenerator(c); err == nil {
		t.Error("no phases accepted")
	}
	c = base
	c.Campaigns = 0
	if _, err := NewGenerator(c); err == nil {
		t.Error("zero campaigns accepted")
	}
	c = base
	c.MutateFraction = 1.5
	if _, err := NewGenerator(c); err == nil {
		t.Error("bad mutate fraction accepted")
	}
	c = base
	c.Experiments = []ExperimentConfig{{Name: "greedy", Weight: 1, Phases: []string{"gen"}, PhasePackages: 100000}}
	if _, err := NewGenerator(c); err == nil {
		t.Error("oversized phase accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := testConfig(t)
	a, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewGenerator(cfg)
	ja, jb := a.Jobs(50), b.Jobs(50)
	for i := range ja {
		if ja[i].Experiment != jb[i].Experiment || ja[i].Phase != jb[i].Phase ||
			ja[i].Campaign != jb[i].Campaign || !ja[i].Spec.Equal(jb[i].Spec) {
			t.Fatalf("job %d differs between identical generators", i)
		}
	}
}

func TestJobsLabeledAndClosed(t *testing.T) {
	g, err := NewGenerator(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	repo := g.cfg.Repo
	jobs := g.Jobs(100)
	if len(jobs) != 100 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	byExp := make(map[string]int)
	for i, j := range jobs {
		byExp[j.Experiment]++
		if j.Spec.Empty() {
			t.Fatalf("job %d empty", i)
		}
		closed := repo.Closure(j.Spec.IDs())
		if len(closed) != j.Spec.Len() {
			t.Fatalf("job %d not dependency-closed", i)
		}
		if j.Campaign < 0 || j.Campaign >= 3 {
			t.Fatalf("job %d campaign %d out of range", i, j.Campaign)
		}
	}
	// All four experiments appear; weighted ones dominate.
	for _, e := range DefaultExperiments() {
		if byExp[e.Name] == 0 {
			t.Errorf("experiment %s never submitted", e.Name)
		}
	}
	if byExp["atlas"] <= byExp["lhcb"] {
		t.Errorf("weights ignored: atlas %d <= lhcb %d", byExp["atlas"], byExp["lhcb"])
	}
}

func TestCampaignsAdvance(t *testing.T) {
	g, err := NewGenerator(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Jobs(300)
	if jobs[0].Campaign != 0 {
		t.Fatalf("first job campaign %d", jobs[0].Campaign)
	}
	last := jobs[len(jobs)-1]
	if last.Campaign == 0 {
		t.Fatal("campaigns never advanced")
	}
	// Non-decreasing frontier: a job's campaign never exceeds the
	// frontier at its position.
	n := len(jobs)
	for i, j := range jobs {
		if j.Campaign > i*3/n {
			t.Fatalf("job %d campaign %d beyond frontier", i, j.Campaign)
		}
	}
}

func TestExperimentPoolsDisjoint(t *testing.T) {
	g, err := NewGenerator(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	repo := g.cfg.Repo
	// Application leaves of different experiments never overlap (the
	// shared content is the core/framework/library closure).
	leafOwner := make(map[pkggraph.PkgID]string)
	for name, phases := range g.selections {
		for _, sels := range phases {
			for _, sel := range sels {
				for _, id := range sel {
					if repo.Package(id).Tier != pkggraph.TierApplication {
						continue
					}
					if owner, ok := leafOwner[id]; ok && owner != name {
						t.Fatalf("package %d selected by both %s and %s", id, owner, name)
					}
					leafOwner[id] = name
				}
			}
		}
	}
}

func TestRunReport(t *testing.T) {
	cfg := testConfig(t)
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Jobs(200)
	mgr := core.MustNewManager(cfg.Repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
	rep, err := Run(mgr, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 200 {
		t.Fatalf("Jobs = %d", rep.Jobs)
	}
	var total int
	for _, er := range rep.PerExperiment {
		total += er.Jobs
		if er.Hits+er.Merges+er.Inserts != er.Jobs {
			t.Fatalf("%s ops don't partition jobs: %+v", er.Name, er)
		}
		if er.MeanContainerEfficiency <= 0 || er.MeanContainerEfficiency > 1 {
			t.Fatalf("%s efficiency %v", er.Name, er.MeanContainerEfficiency)
		}
	}
	if total != rep.Jobs {
		t.Fatal("per-experiment jobs don't sum")
	}
	// Campaign re-submissions give hits; the shared core gives merges
	// across experiments — at alpha 0.8 some cached image should serve
	// multiple experiments.
	if rep.SharedImages == 0 {
		t.Error("no cross-experiment image sharing at alpha 0.8")
	}
	if rep.UniqueData > rep.TotalData {
		t.Fatal("unique exceeds total")
	}
}

func TestRunEmptyStream(t *testing.T) {
	cfg := testConfig(t)
	mgr := core.MustNewManager(cfg.Repo, core.Config{Alpha: 0.8})
	rep, err := Run(mgr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 0 || len(rep.PerExperiment) != 0 {
		t.Fatalf("empty run: %+v", rep)
	}
}
