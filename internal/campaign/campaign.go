// Package campaign models the WLCG operating picture of Section II:
// several experiments (ATLAS, CMS, LHCb, ...) submit production
// campaigns — pipelines of phases (gen, sim, digi, reco) — against a
// shared software repository, with each campaign revising the software
// versions in use. "High-throughput jobs are often generated
// automatically by submission systems on behalf of multiple users ...
// as a user's work evolves, different jobs need different software,
// and new containers are generated."
//
// The generator partitions the repository's application families among
// experiments, derives a specification per (experiment, phase,
// campaign), and emits a labeled job stream. Run drives a LANDLORD
// manager with the stream and reports per-experiment operation mixes
// plus cross-experiment image sharing — the question site operators
// actually ask of a shared cache.
package campaign

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// ExperimentConfig declares one experiment in the campaign.
type ExperimentConfig struct {
	// Name identifies the experiment (e.g. "atlas").
	Name string
	// Weight is the experiment's share of submitted jobs (relative).
	Weight float64
	// Phases is the production pipeline (e.g. gen, sim, reco). Each
	// phase gets its own specification per campaign.
	Phases []string
	// PhasePackages is the number of application packages in each
	// phase's initial selection (before dependency closure).
	PhasePackages int
}

// Config parameterizes a campaign simulation.
type Config struct {
	Repo *pkggraph.Repo
	// Experiments to simulate; weights are normalized internally.
	Experiments []ExperimentConfig
	// Campaigns is the number of software revisions: campaign k+1
	// mutates each phase's selection relative to campaign k.
	Campaigns int
	// MutateFraction is the fraction of a phase's packages revised
	// between campaigns (version swaps within the same family when
	// possible).
	MutateFraction float64
	// Seed drives all randomness.
	Seed int64
}

func (c Config) validate() error {
	if c.Repo == nil {
		return fmt.Errorf("campaign: nil repo")
	}
	if len(c.Experiments) == 0 {
		return fmt.Errorf("campaign: no experiments")
	}
	for _, e := range c.Experiments {
		if e.Name == "" {
			return fmt.Errorf("campaign: experiment with empty name")
		}
		if e.Weight <= 0 {
			return fmt.Errorf("campaign: experiment %q has non-positive weight", e.Name)
		}
		if len(e.Phases) == 0 {
			return fmt.Errorf("campaign: experiment %q has no phases", e.Name)
		}
		if e.PhasePackages < 1 {
			return fmt.Errorf("campaign: experiment %q needs PhasePackages >= 1", e.Name)
		}
	}
	if c.Campaigns < 1 {
		return fmt.Errorf("campaign: need at least one campaign")
	}
	if c.MutateFraction < 0 || c.MutateFraction > 1 {
		return fmt.Errorf("campaign: MutateFraction %v out of range", c.MutateFraction)
	}
	return nil
}

// DefaultExperiments mirrors the paper's four collaborations with the
// pipeline phases of Figure 2.
func DefaultExperiments() []ExperimentConfig {
	return []ExperimentConfig{
		{Name: "alice", Weight: 1, Phases: []string{"gen-sim"}, PhasePackages: 8},
		{Name: "atlas", Weight: 3, Phases: []string{"gen", "sim"}, PhasePackages: 10},
		{Name: "cms", Weight: 3, Phases: []string{"gen-sim", "digi", "reco"}, PhasePackages: 10},
		{Name: "lhcb", Weight: 1, Phases: []string{"gen-sim"}, PhasePackages: 6},
	}
}

// Job is one labeled submission.
type Job struct {
	Experiment string
	Phase      string
	Campaign   int
	Spec       spec.Spec
}

// Generator produces labeled campaign jobs.
type Generator struct {
	cfg Config
	rng *rand.Rand
	cum []float64 // cumulative experiment weights
	// specs[experiment][phase][campaign] holds the phase selections
	// (pre-closure).
	selections map[string]map[string][][]pkggraph.PkgID
}

// NewGenerator partitions the repository and derives every
// (experiment, phase, campaign) selection up front, so job emission is
// cheap and the whole schedule is deterministic in the seed.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		selections: make(map[string]map[string][][]pkggraph.PkgID),
	}
	var total float64
	for _, e := range cfg.Experiments {
		total += e.Weight
		g.cum = append(g.cum, total)
	}

	// Partition application packages among experiments round-robin by
	// family, so each experiment has a disjoint leaf pool while all
	// share the repository's core through closures.
	pools := make([][]pkggraph.PkgID, len(cfg.Experiments))
	famIdx := 0
	seenFam := make(map[string]int)
	for id := 0; id < cfg.Repo.Len(); id++ {
		p := cfg.Repo.Package(pkggraph.PkgID(id))
		if p.Tier != pkggraph.TierApplication {
			continue
		}
		e, ok := seenFam[p.Name]
		if !ok {
			e = famIdx % len(cfg.Experiments)
			seenFam[p.Name] = e
			famIdx++
		}
		pools[e] = append(pools[e], pkggraph.PkgID(id))
	}
	for i, e := range cfg.Experiments {
		if len(pools[i]) < e.PhasePackages {
			return nil, fmt.Errorf("campaign: experiment %q needs %d app packages, pool has %d",
				e.Name, e.PhasePackages, len(pools[i]))
		}
	}

	for i, e := range cfg.Experiments {
		phases := make(map[string][][]pkggraph.PkgID, len(e.Phases))
		for _, phase := range e.Phases {
			sels := make([][]pkggraph.PkgID, cfg.Campaigns)
			sels[0] = g.sampleFromPool(pools[i], e.PhasePackages)
			for c := 1; c < cfg.Campaigns; c++ {
				sels[c] = g.mutate(sels[c-1], pools[i])
			}
			phases[phase] = sels
		}
		g.selections[e.Name] = phases
	}
	return g, nil
}

// sampleFromPool draws n distinct packages from the pool.
func (g *Generator) sampleFromPool(pool []pkggraph.PkgID, n int) []pkggraph.PkgID {
	idx := g.rng.Perm(len(pool))[:n]
	sort.Ints(idx)
	out := make([]pkggraph.PkgID, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// mutate revises a selection for the next campaign: MutateFraction of
// its packages swap to a sibling version of the same family when one
// exists, otherwise to a fresh pool pick.
func (g *Generator) mutate(prev, pool []pkggraph.PkgID) []pkggraph.PkgID {
	next := append([]pkggraph.PkgID(nil), prev...)
	k := int(float64(len(next))*g.cfg.MutateFraction + 0.5)
	for _, i := range g.rng.Perm(len(next))[:k] {
		fam := g.cfg.Repo.FamilyVersions(g.cfg.Repo.Package(next[i]).Name)
		if len(fam) > 1 {
			next[i] = fam[g.rng.Intn(len(fam))]
		} else {
			next[i] = pool[g.rng.Intn(len(pool))]
		}
	}
	return next
}

// pickExperiment draws an experiment index by weight.
func (g *Generator) pickExperiment() int {
	x := g.rng.Float64() * g.cum[len(g.cum)-1]
	for i, c := range g.cum {
		if x < c {
			return i
		}
	}
	return len(g.cum) - 1
}

// Jobs emits n labeled jobs: experiments chosen by weight, phases
// uniformly, campaigns advancing through the stream (early jobs come
// from early campaigns, as production does).
func (g *Generator) Jobs(n int) []Job {
	out := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		e := g.cfg.Experiments[g.pickExperiment()]
		phase := e.Phases[g.rng.Intn(len(e.Phases))]
		// The active campaign advances with stream position, with some
		// stragglers still submitting against older revisions.
		frontier := i * g.cfg.Campaigns / n
		campaign := frontier
		if frontier > 0 && g.rng.Float64() < 0.2 {
			campaign = g.rng.Intn(frontier + 1)
		}
		sel := g.selections[e.Name][phase][campaign]
		out = append(out, Job{
			Experiment: e.Name,
			Phase:      phase,
			Campaign:   campaign,
			Spec:       spec.WithClosure(g.cfg.Repo, sel),
		})
	}
	return out
}

// ExperimentReport is one experiment's slice of a campaign run.
type ExperimentReport struct {
	Name    string
	Jobs    int
	Hits    int
	Merges  int
	Inserts int
	// MeanContainerEfficiency over the experiment's jobs.
	MeanContainerEfficiency float64
}

// Report summarizes a campaign run against one manager.
type Report struct {
	Jobs          int
	PerExperiment []ExperimentReport
	// SharedImages counts cached images whose contents served jobs of
	// more than one experiment — cross-experiment sharing through the
	// common core.
	SharedImages int
	Images       int
	TotalData    int64
	UniqueData   int64
}

// Run submits the jobs to mgr in order and aggregates per-experiment
// behaviour.
func Run(mgr *core.Manager, jobs []Job) (Report, error) {
	perExp := make(map[string]*ExperimentReport)
	imageUsers := make(map[uint64]map[string]bool) // image -> experiments served
	order := []string{}
	for i, job := range jobs {
		res, err := mgr.Request(job.Spec)
		if err != nil {
			return Report{}, fmt.Errorf("campaign: job %d (%s/%s): %w", i, job.Experiment, job.Phase, err)
		}
		er := perExp[job.Experiment]
		if er == nil {
			er = &ExperimentReport{Name: job.Experiment}
			perExp[job.Experiment] = er
			order = append(order, job.Experiment)
		}
		er.Jobs++
		switch res.Op {
		case core.OpHit:
			er.Hits++
		case core.OpMerge:
			er.Merges++
		case core.OpInsert:
			er.Inserts++
		}
		er.MeanContainerEfficiency += res.ContainerEfficiency()
		users := imageUsers[res.ImageID]
		if users == nil {
			users = make(map[string]bool)
			imageUsers[res.ImageID] = users
		}
		users[job.Experiment] = true
	}
	rep := Report{Jobs: len(jobs), Images: mgr.Len(), TotalData: mgr.TotalData(), UniqueData: mgr.UniqueData()}
	sort.Strings(order)
	for _, name := range order {
		er := perExp[name]
		if er.Jobs > 0 {
			er.MeanContainerEfficiency /= float64(er.Jobs)
		}
		rep.PerExperiment = append(rep.PerExperiment, *er)
	}
	// Count sharing only among images still cached.
	for _, img := range mgr.Images() {
		if users := imageUsers[img.ID]; len(users) > 1 {
			rep.SharedImages++
		}
	}
	return rep, nil
}
