package shrinkwrap

import (
	"fmt"
	"sort"

	"repro/internal/cvmfs"
)

// Partial (file-granularity) builds.
//
// "While the Shrinkwrap utility can operate at the granularity of
// individual files, allowing for partial packages tends to produce
// unreliable container images." (Section VI) — the capability exists
// in the tool; the *policy* of packing whole packages lives a level up
// in LANDLORD. BuildFiles implements the capability: it materializes
// exactly the named paths, using the same local object cache and cost
// model as whole-package builds.

// PartialReport describes one file-granularity build.
type PartialReport struct {
	Files        int
	Bytes        int64 // logical bytes packed
	FetchedBytes int64
	ReusedBytes  int64
	PrepTime     float64 // seconds, from the cost model
	// PartialPackages counts packages only partially included — the
	// reliability hazard the paper calls out.
	PartialPackages int
}

// BuildFiles materializes the named repository paths into a partial
// image. Paths are resolved through the CVMFS namespace; duplicates
// are packed once. At least one path is required.
func (b *Builder) BuildFiles(paths []string) (PartialReport, error) {
	if len(paths) == 0 {
		return PartialReport{}, fmt.Errorf("shrinkwrap: no paths to build")
	}
	uniq := make(map[string]struct{}, len(paths))
	ordered := make([]string, 0, len(paths))
	for _, p := range paths {
		if _, dup := uniq[p]; !dup {
			uniq[p] = struct{}{}
			ordered = append(ordered, p)
		}
	}
	sort.Strings(ordered)

	var rep PartialReport
	perPackage := make(map[string]int) // package key -> files packed
	seen := make(map[cvmfs.Digest]struct{}, len(ordered))
	b.mu.Lock()
	defer b.mu.Unlock()
	var fetched, written int64
	for _, path := range ordered {
		entry, err := b.store.Stat(path)
		if err != nil {
			return PartialReport{}, err
		}
		key, _, err := cvmfs.ParsePath(path)
		if err != nil {
			return PartialReport{}, err
		}
		perPackage[key]++
		rep.Files++
		rep.Bytes += entry.Size
		written += entry.Size
		if _, dup := seen[entry.Digest]; dup {
			continue
		}
		seen[entry.Digest] = struct{}{}
		if _, have := b.local[entry.Digest]; have {
			rep.ReusedBytes += entry.Size
		} else {
			b.local[entry.Digest] = struct{}{}
			b.cached += entry.Size
			rep.FetchedBytes += entry.Size
			fetched += entry.Size
		}
	}
	// Count packages that are only partially present.
	for key, n := range perPackage {
		id, ok := b.store.Repo().Lookup(key)
		if !ok {
			continue
		}
		if cat := b.store.Publish(id); n < len(cat.Files) {
			rep.PartialPackages++
		}
	}
	rep.PrepTime = b.cost.duration(fetched, written, rep.Files).Seconds()
	return rep, nil
}
