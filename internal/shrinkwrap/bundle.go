package shrinkwrap

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/cvmfs"
	"repro/internal/spec"
)

// Image bundles.
//
// Pack serializes a built image to a single flat file — the stand-in
// for the paper's Singularity image files ("compressing the resulting
// data into an image file"). The format is:
//
//	magic "LLIMG1\n"
//	uvarint manifest length, then the JSON manifest
//	file contents back to back, in manifest order
//
// File contents are synthetic (deterministic streams derived from each
// file's content address), but the integrity machinery is real: the
// manifest records a SHA-256 checksum per file, and Unpack re-hashes
// every byte it reads, so truncated or corrupted bundles are detected
// exactly as they would be for real content.

const bundleMagic = "LLIMG1\n"

// BundleFile is one file entry of a bundle manifest.
type BundleFile struct {
	Path     string `json:"path"`
	Size     int64  `json:"size"`
	Checksum string `json:"sha256"` // hex of the packed content
}

// Manifest describes a packed image.
type Manifest struct {
	Packages []string     `json:"packages"` // package keys, sorted
	Files    []BundleFile `json:"files"`
	Bytes    int64        `json:"bytes"` // total content bytes
}

// contentStream fills buf with the deterministic pseudo-content of a
// file, a xorshift64 stream seeded from the file's content address.
func contentStream(d cvmfs.Digest, w io.Writer, size int64) (sum [32]byte, err error) {
	h := sha256.New()
	out := io.MultiWriter(w, h)
	seed := binary.LittleEndian.Uint64(d[:8]) | 1
	var block [8192]byte
	x := seed
	for size > 0 {
		n := int64(len(block))
		if n > size {
			n = size
		}
		for i := int64(0); i+8 <= n; i += 8 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			binary.LittleEndian.PutUint64(block[i:], x)
		}
		for i := n - n%8; i < n; i++ {
			block[i] = byte(x >> (8 * (i % 8)))
		}
		if _, err := out.Write(block[:n]); err != nil {
			return sum, err
		}
		size -= n
	}
	h.Sum(sum[:0])
	return sum, nil
}

// Pack writes the image for s as a bundle to w and returns its
// manifest. The specification must be non-empty and dependency-closed
// (Pack packs exactly the listed packages).
func (b *Builder) Pack(w io.Writer, s spec.Spec) (Manifest, error) {
	if s.Empty() {
		return Manifest{}, fmt.Errorf("shrinkwrap: refusing to pack an empty specification")
	}
	// Gather catalogs and pre-compute checksums (a first pass over the
	// synthetic content) so the manifest can be written up front.
	var man Manifest
	type pending struct {
		digest cvmfs.Digest
		size   int64
	}
	var contents []pending
	for _, id := range s.IDs() {
		cat := b.store.Publish(id)
		man.Packages = append(man.Packages, b.store.Repo().Package(id).Key())
		for i := range cat.Files {
			f := &cat.Files[i]
			sum, err := contentStream(f.Digest, io.Discard, f.Size)
			if err != nil {
				return Manifest{}, err
			}
			man.Files = append(man.Files, BundleFile{
				Path:     f.Path,
				Size:     f.Size,
				Checksum: fmt.Sprintf("%x", sum),
			})
			man.Bytes += f.Size
			contents = append(contents, pending{f.Digest, f.Size})
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(bundleMagic); err != nil {
		return Manifest{}, err
	}
	manJSON, err := json.Marshal(&man)
	if err != nil {
		return Manifest{}, fmt.Errorf("shrinkwrap: encoding manifest: %w", err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(manJSON)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return Manifest{}, err
	}
	if _, err := bw.Write(manJSON); err != nil {
		return Manifest{}, err
	}
	for _, p := range contents {
		if _, err := contentStream(p.digest, bw, p.size); err != nil {
			return Manifest{}, err
		}
	}
	if err := bw.Flush(); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// PackFile packs the image to the named file.
func (b *Builder) PackFile(path string, s spec.Spec) (Manifest, error) {
	f, err := os.Create(path)
	if err != nil {
		return Manifest{}, err
	}
	man, err := b.Pack(f, s)
	if err != nil {
		f.Close()
		return Manifest{}, err
	}
	return man, f.Close()
}

// Unpack reads a bundle, verifying the magic, manifest framing, and
// every file's checksum and length. It returns the manifest; contents
// are validated and discarded (a real consumer would extract them).
func Unpack(r io.Reader) (Manifest, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(bundleMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return Manifest{}, fmt.Errorf("shrinkwrap: reading magic: %w", err)
	}
	if string(magic) != bundleMagic {
		return Manifest{}, fmt.Errorf("shrinkwrap: bad magic %q", magic)
	}
	manLen, err := binary.ReadUvarint(br)
	if err != nil {
		return Manifest{}, fmt.Errorf("shrinkwrap: reading manifest length: %w", err)
	}
	if manLen > 1<<30 {
		return Manifest{}, fmt.Errorf("shrinkwrap: implausible manifest length %d", manLen)
	}
	manJSON := make([]byte, manLen)
	if _, err := io.ReadFull(br, manJSON); err != nil {
		return Manifest{}, fmt.Errorf("shrinkwrap: reading manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(manJSON, &man); err != nil {
		return Manifest{}, fmt.Errorf("shrinkwrap: decoding manifest: %w", err)
	}
	var declared int64
	for i := range man.Files {
		if man.Files[i].Size < 0 {
			return Manifest{}, fmt.Errorf("shrinkwrap: negative size for %s", man.Files[i].Path)
		}
		declared += man.Files[i].Size
	}
	if declared != man.Bytes {
		return Manifest{}, fmt.Errorf("shrinkwrap: manifest inconsistent: files sum to %d, header says %d", declared, man.Bytes)
	}
	for i := range man.Files {
		f := &man.Files[i]
		h := sha256.New()
		if _, err := io.CopyN(h, br, f.Size); err != nil {
			return Manifest{}, fmt.Errorf("shrinkwrap: reading %s: %w", f.Path, err)
		}
		if got := fmt.Sprintf("%x", h.Sum(nil)); got != f.Checksum {
			return Manifest{}, fmt.Errorf("shrinkwrap: checksum mismatch for %s", f.Path)
		}
	}
	// The bundle must end exactly after the last file.
	if _, err := br.ReadByte(); err != io.EOF {
		return Manifest{}, fmt.Errorf("shrinkwrap: trailing garbage after bundle")
	}
	return man, nil
}

// UnpackFile reads and verifies the named bundle.
func UnpackFile(path string) (Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	return Unpack(f)
}
