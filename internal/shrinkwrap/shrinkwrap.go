// Package shrinkwrap builds tailored container images from CVMFS
// content, reproducing the role of the paper's Shrinkwrap tool:
// "efficiently building container images from CVMFS" by downloading a
// specification's contents and packing them into an image file.
//
// The builder keeps a local content-addressed cache (the "few terabytes
// of scratch space attached to a head node" of Section V) so repeated
// builds fetch only objects not yet present. Costs are accounted in
// bytes and converted to simulated wall-clock time with a calibrated
// CostModel, since the paper identifies disk I/O — not computation — as
// the dominant cost.
package shrinkwrap

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cvmfs"
	"repro/internal/spec"
)

// CostModel converts byte and file counts into simulated preparation
// time.
type CostModel struct {
	FetchBandwidth  int64         // bytes/second from the CVMFS backend
	WriteBandwidth  int64         // bytes/second into the image file
	PerFileOverhead time.Duration // metadata cost per file packed
}

// DefaultCostModel is calibrated so the seven Figure 2 benchmark
// applications (minimal images of 2.7–8.4 GB) prepare in tens of
// seconds, the range the paper reports (37–115 s).
func DefaultCostModel() CostModel {
	return CostModel{
		FetchBandwidth:  300 << 20, // 300 MB/s
		WriteBandwidth:  500 << 20, // 500 MB/s
		PerFileOverhead: 120 * time.Microsecond,
	}
}

// duration computes the simulated time to fetch fetched bytes, write
// written bytes, and handle files metadata operations.
func (c CostModel) duration(fetched, written int64, files int) time.Duration {
	var d time.Duration
	if c.FetchBandwidth > 0 {
		d += time.Duration(float64(fetched) / float64(c.FetchBandwidth) * float64(time.Second))
	}
	if c.WriteBandwidth > 0 {
		d += time.Duration(float64(written) / float64(c.WriteBandwidth) * float64(time.Second))
	}
	d += time.Duration(files) * c.PerFileOverhead
	return d
}

// Image is a built container image: the specification it satisfies plus
// its measured content.
type Image struct {
	Spec        spec.Spec
	Files       int
	Bytes       int64 // logical size: every file stored in full
	UniqueBytes int64 // distinct content within the image
}

// Report describes one build: what was fetched versus reused from the
// local cache, what was written, and the simulated preparation time.
type Report struct {
	Image        Image
	FetchedBytes int64 // transferred from the backend this build
	ReusedBytes  int64 // satisfied by the local object cache
	WrittenBytes int64 // bytes packed into the image (== Image.Bytes)
	PrepTime     time.Duration
}

// Builder constructs images against a CVMFS store. It is safe for
// concurrent use.
type Builder struct {
	store *cvmfs.Store
	cost  CostModel

	mu     sync.Mutex
	local  map[cvmfs.Digest]struct{} // head-node scratch cache
	cached int64                     // bytes held in the local cache
}

// NewBuilder creates a Builder over store with the given cost model.
func NewBuilder(store *cvmfs.Store, cost CostModel) *Builder {
	return &Builder{
		store: store,
		cost:  cost,
		local: make(map[cvmfs.Digest]struct{}),
	}
}

// CachedBytes returns the size of the builder's local object cache.
func (b *Builder) CachedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cached
}

// DropCache empties the local object cache, modeling a scratch-space
// cleanup between allocations.
func (b *Builder) DropCache() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.local = make(map[cvmfs.Digest]struct{})
	b.cached = 0
}

// Build materializes an image for s. The specification must already
// include its dependency closure; Build packs exactly the packages
// listed ("allowing for partial packages tends to produce unreliable
// container images", so granularity is whole packages). An empty
// specification is an error: it indicates the caller failed to resolve
// a request.
func (b *Builder) Build(s spec.Spec) (Report, error) {
	if s.Empty() {
		return Report{}, fmt.Errorf("shrinkwrap: refusing to build an image for an empty specification")
	}
	var rep Report
	rep.Image.Spec = s

	seen := make(map[cvmfs.Digest]struct{}, 1024) // distinct within this image
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, id := range s.IDs() {
		// Publish is idempotent and internally synchronized; the store
		// mutex is independent of b.mu, so holding both is safe.
		cat := b.store.Publish(id)
		for i := range cat.Files {
			f := &cat.Files[i]
			rep.Image.Files++
			rep.Image.Bytes += f.Size
			if _, dup := seen[f.Digest]; !dup {
				seen[f.Digest] = struct{}{}
				rep.Image.UniqueBytes += f.Size
				if _, have := b.local[f.Digest]; have {
					rep.ReusedBytes += f.Size
				} else {
					b.local[f.Digest] = struct{}{}
					b.cached += f.Size
					rep.FetchedBytes += f.Size
				}
			}
		}
	}
	rep.WrittenBytes = rep.Image.Bytes
	rep.PrepTime = b.cost.duration(rep.FetchedBytes, rep.WrittenBytes, rep.Image.Files)
	return rep, nil
}

// storeForTest exposes the underlying store to package tests.
func (b *Builder) storeForTest() *cvmfs.Store { return b.store }
