package shrinkwrap

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cvmfs"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

func testRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "p", Tier: pkggraph.TierCore, Size: 4096, FileCount: 4},
		{ID: 1, Name: "base", Version: "2.0", Platform: "p", Tier: pkggraph.TierCore, Size: 4096, FileCount: 4},
		{ID: 2, Name: "app", Version: "1.0", Platform: "p", Tier: pkggraph.TierApplication, Size: 2048, FileCount: 2, Deps: []pkggraph.PkgID{0}},
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func newBuilder(t *testing.T) (*Builder, *pkggraph.Repo) {
	t.Helper()
	repo := testRepo(t)
	store := cvmfs.NewStore(repo)
	return NewBuilder(store, DefaultCostModel()), repo
}

func TestBuildEmptySpecFails(t *testing.T) {
	b, _ := newBuilder(t)
	if _, err := b.Build(spec.Spec{}); err == nil {
		t.Fatal("expected error for empty spec")
	}
}

func TestBuildAccountsBytes(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	rep, err := b.Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if rep.Image.Bytes != 4096+2048 {
		t.Errorf("Bytes = %d, want 6144", rep.Image.Bytes)
	}
	if rep.WrittenBytes != rep.Image.Bytes {
		t.Errorf("WrittenBytes = %d, want %d", rep.WrittenBytes, rep.Image.Bytes)
	}
	if rep.Image.Files != 6 {
		t.Errorf("Files = %d, want 6", rep.Image.Files)
	}
	if rep.FetchedBytes != rep.Image.UniqueBytes {
		t.Errorf("cold build should fetch all unique bytes: fetched %d unique %d",
			rep.FetchedBytes, rep.Image.UniqueBytes)
	}
	if rep.ReusedBytes != 0 {
		t.Errorf("cold build reused %d bytes", rep.ReusedBytes)
	}
	if rep.PrepTime <= 0 {
		t.Error("PrepTime should be positive")
	}
}

func TestSecondBuildReusesCache(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	if _, err := b.Build(s); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FetchedBytes != 0 {
		t.Errorf("warm build fetched %d bytes, want 0", rep.FetchedBytes)
	}
	if rep.ReusedBytes != rep.Image.UniqueBytes {
		t.Errorf("warm build reused %d, want %d", rep.ReusedBytes, rep.Image.UniqueBytes)
	}
}

func TestCrossVersionFetchSavings(t *testing.T) {
	b, _ := newBuilder(t)
	v1 := spec.New([]pkggraph.PkgID{0})
	v2 := spec.New([]pkggraph.PkgID{1})
	if _, err := b.Build(v1); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(v2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReusedBytes == 0 {
		t.Error("carried-over files should be reused across versions")
	}
	if rep.FetchedBytes >= rep.Image.Bytes {
		t.Errorf("fetched %d, want less than full image %d", rep.FetchedBytes, rep.Image.Bytes)
	}
}

func TestDropCache(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	if _, err := b.Build(s); err != nil {
		t.Fatal(err)
	}
	if b.CachedBytes() == 0 {
		t.Fatal("cache empty after build")
	}
	b.DropCache()
	if b.CachedBytes() != 0 {
		t.Fatal("cache not empty after DropCache")
	}
	rep, err := b.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FetchedBytes == 0 {
		t.Error("post-drop build should fetch again")
	}
}

func TestCostModelDuration(t *testing.T) {
	c := CostModel{FetchBandwidth: 100, WriteBandwidth: 200, PerFileOverhead: time.Millisecond}
	d := c.duration(100, 200, 3)
	want := time.Second + time.Second + 3*time.Millisecond
	if d != want {
		t.Fatalf("duration = %v, want %v", d, want)
	}
	zero := CostModel{}
	if zero.duration(100, 100, 0) != 0 {
		t.Fatal("zero bandwidths should cost nothing")
	}
}

func TestDefaultCostModelScale(t *testing.T) {
	// A 6 GB image with ~50k files should prepare in tens of seconds,
	// matching Figure 2's preparation times.
	c := DefaultCostModel()
	d := c.duration(6<<30, 6<<30, 50000)
	if d < 10*time.Second || d > 300*time.Second {
		t.Fatalf("6GB prep time = %v, want tens of seconds", d)
	}
}

func TestConcurrentBuilds(t *testing.T) {
	repo := pkggraph.MustGenerate(smallCfg(), 4)
	store := cvmfs.NewStore(repo)
	b := NewBuilder(store, DefaultCostModel())
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := pkggraph.PkgID((w*31 + i*7) % repo.Len())
				s := spec.WithClosure(repo, []pkggraph.PkgID{id})
				if _, err := b.Build(s); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func smallCfg() pkggraph.GenConfig {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 5
	cfg.LibraryFamilies = 20
	cfg.ApplicationFamilies = 33
	return cfg
}

func TestBuildFilesPartial(t *testing.T) {
	b, repo := newBuilder(t)
	// Pack two of base/1.0's four files plus a duplicate path.
	cat, err := listCatalog(b, repo, 0)
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{cat[0].Path, cat[1].Path, cat[0].Path}
	rep, err := b.BuildFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 2 {
		t.Fatalf("Files = %d, want 2 (duplicate collapsed)", rep.Files)
	}
	if rep.Bytes != cat[0].Size+cat[1].Size {
		t.Fatalf("Bytes = %d", rep.Bytes)
	}
	if rep.PartialPackages != 1 {
		t.Fatalf("PartialPackages = %d, want 1", rep.PartialPackages)
	}
	if rep.FetchedBytes == 0 || rep.PrepTime <= 0 {
		t.Fatalf("missing accounting: %+v", rep)
	}
	// Second build reuses the local cache.
	rep2, err := b.BuildFiles(paths[:2])
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FetchedBytes != 0 || rep2.ReusedBytes == 0 {
		t.Fatalf("warm partial build fetched: %+v", rep2)
	}
}

func TestBuildFilesWholePackageNotPartial(t *testing.T) {
	b, repo := newBuilder(t)
	cat, err := listCatalog(b, repo, 2) // app has 2 files
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.BuildFiles([]string{cat[0].Path, cat[1].Path})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PartialPackages != 0 {
		t.Fatalf("whole package flagged partial: %+v", rep)
	}
}

func TestBuildFilesErrors(t *testing.T) {
	b, _ := newBuilder(t)
	if _, err := b.BuildFiles(nil); err == nil {
		t.Error("empty path list accepted")
	}
	if _, err := b.BuildFiles([]string{"/not/a/repo/path"}); err == nil {
		t.Error("foreign path accepted")
	}
	if _, err := b.BuildFiles([]string{"/cvmfs/sft.cern.ch/ghost/1.0/p/f000000"}); err == nil {
		t.Error("unknown package accepted")
	}
}

// listCatalog fetches a package's file entries through the store.
func listCatalog(b *Builder, repo *pkggraph.Repo, id pkggraph.PkgID) ([]cvmfs.FileEntry, error) {
	p := repo.Package(id)
	return b.storeForTest().ListDir("/cvmfs/sft.cern.ch/" + p.Name + "/" + p.Version + "/" + p.Platform)
}
