package shrinkwrap

import (
	"bytes"
	"testing"

	"repro/internal/cvmfs"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// FuzzUnpack feeds arbitrary bytes to the bundle reader: malformed
// input must produce errors, never panics, and a valid bundle prefix
// with mutations must not be accepted unless content checksums still
// hold.
func FuzzUnpack(f *testing.F) {
	// Seed with a genuine bundle.
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "x", Version: "1", Platform: "p", Tier: pkggraph.TierCore, Size: 512, FileCount: 2},
	}
	repo, err := pkggraph.New(pkgs)
	if err != nil {
		f.Fatal(err)
	}
	b := NewBuilder(cvmfs.NewStore(repo), DefaultCostModel())
	var buf bytes.Buffer
	if _, err := b.Pack(&buf, spec.New([]pkggraph.PkgID{0})); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("LLIMG1\n"))
	f.Add([]byte{})
	f.Add([]byte("garbage everywhere"))
	f.Fuzz(func(t *testing.T, input []byte) {
		man, err := Unpack(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must be the valid bundle (or an equally
		// self-consistent one): byte totals must match the manifest.
		var total int64
		for _, file := range man.Files {
			if file.Size < 0 {
				t.Fatal("accepted manifest with negative file size")
			}
			total += file.Size
		}
		if total != man.Bytes {
			t.Fatalf("accepted inconsistent manifest: %d vs %d", total, man.Bytes)
		}
	})
}
