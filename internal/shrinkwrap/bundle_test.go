package shrinkwrap

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/cvmfs"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	var buf bytes.Buffer
	man, err := b.Pack(&buf, s)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if man.Bytes != 4096+2048 {
		t.Fatalf("manifest bytes = %d, want 6144", man.Bytes)
	}
	if len(man.Packages) != 2 || len(man.Files) != 6 {
		t.Fatalf("manifest: %d packages, %d files", len(man.Packages), len(man.Files))
	}
	got, err := Unpack(&buf)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.Bytes != man.Bytes || len(got.Files) != len(man.Files) {
		t.Fatal("unpacked manifest differs")
	}
}

func TestPackEmptySpecFails(t *testing.T) {
	b, _ := newBuilder(t)
	var buf bytes.Buffer
	if _, err := b.Pack(&buf, spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestPackDeterministic(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	var a, c bytes.Buffer
	if _, err := b.Pack(&a, s); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Pack(&c, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("identical specs packed to different bundles")
	}
}

func TestUnpackDetectsCorruption(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	var buf bytes.Buffer
	if _, err := b.Pack(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte deep inside the content section.
	data[len(data)-100] ^= 0xff
	if _, err := Unpack(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted bundle accepted")
	}
}

func TestUnpackDetectsTruncation(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	var buf bytes.Buffer
	if _, err := b.Pack(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Unpack(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Fatal("truncated bundle accepted")
	}
}

func TestUnpackDetectsTrailingGarbage(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	var buf bytes.Buffer
	if _, err := b.Pack(&buf, s); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("extra")
	if _, err := Unpack(&buf); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage accepted: %v", err)
	}
}

func TestUnpackRejectsBadMagic(t *testing.T) {
	if _, err := Unpack(strings.NewReader("NOTMAG\nxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Unpack(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestPackUnpackFile(t *testing.T) {
	b, repo := newBuilder(t)
	s := spec.WithClosure(repo, []pkggraph.PkgID{0})
	path := t.TempDir() + "/img.llimg"
	man, err := b.PackFile(path, s)
	if err != nil {
		t.Fatalf("PackFile: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() <= man.Bytes {
		t.Fatalf("bundle file %d bytes should exceed content %d (framing)", info.Size(), man.Bytes)
	}
	if _, err := UnpackFile(path); err != nil {
		t.Fatalf("UnpackFile: %v", err)
	}
	if _, err := UnpackFile(t.TempDir() + "/missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBundleMatchesBuildAccounting(t *testing.T) {
	repo := testRepo(t)
	store := cvmfs.NewStore(repo)
	b := NewBuilder(store, DefaultCostModel())
	s := spec.WithClosure(repo, []pkggraph.PkgID{2})
	rep, err := b.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	man, err := b.Pack(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if man.Bytes != rep.Image.Bytes {
		t.Fatalf("bundle content %d != build accounting %d", man.Bytes, rep.Image.Bytes)
	}
	if len(man.Files) != rep.Image.Files {
		t.Fatalf("bundle files %d != build accounting %d", len(man.Files), rep.Image.Files)
	}
}
