package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/workload"
)

func flatRepo(t testing.TB, n int, size int64) *pkggraph.Repo {
	t.Helper()
	pkgs := make([]pkggraph.Package, n)
	for i := range pkgs {
		pkgs[i] = pkggraph.Package{
			ID: pkggraph.PkgID(i), Name: "pkg", Version: versionOf(i), Platform: "p",
			Tier: pkggraph.TierLibrary, Size: size, FileCount: 1,
		}
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func versionOf(i int) string {
	return string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func sp(vs ...pkggraph.PkgID) spec.Spec { return spec.New(vs) }

func genRepo(t testing.TB) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	return pkggraph.MustGenerate(cfg, 42)
}

func TestWorkerRunAndReuse(t *testing.T) {
	w := NewWorker(0, 0)
	if got := w.Run(1, 0, 100); got != 100 {
		t.Fatalf("first run transferred %d, want 100", got)
	}
	if got := w.Run(1, 0, 100); got != 0 {
		t.Fatalf("second run transferred %d, want 0", got)
	}
	st := w.Stats()
	if st.Jobs != 2 || st.LocalHits != 1 || st.Transfers != 1 || st.TransferredBytes != 100 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWorkerStaleVersionRetransfers(t *testing.T) {
	w := NewWorker(0, 0)
	w.Run(1, 0, 100)
	if got := w.Run(1, 1, 150); got != 150 {
		t.Fatalf("stale copy not retransferred: %d", got)
	}
	if w.CachedBytes() != 150 || w.CachedImages() != 1 {
		t.Fatalf("cache state: %d bytes, %d images", w.CachedBytes(), w.CachedImages())
	}
}

func TestWorkerLRUEviction(t *testing.T) {
	w := NewWorker(0, 250)
	w.Run(1, 0, 100)
	w.Run(2, 0, 100)
	w.Run(1, 0, 100) // touch 1
	w.Run(3, 0, 100) // evict 2
	if w.CachedImages() != 2 {
		t.Fatalf("images = %d, want 2", w.CachedImages())
	}
	if got := w.Run(1, 0, 100); got != 0 {
		t.Fatal("recently used copy was evicted")
	}
	if got := w.Run(2, 0, 100); got == 0 {
		t.Fatal("LRU copy should have been evicted")
	}
	if w.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestWorkerInvalidate(t *testing.T) {
	w := NewWorker(0, 0)
	w.Run(1, 0, 100)
	w.Invalidate(1)
	if w.CachedBytes() != 0 {
		t.Fatal("Invalidate did not drop the copy")
	}
	w.Invalidate(99) // absent: no-op
}

func TestNewSiteValidation(t *testing.T) {
	repo := flatRepo(t, 10, 1)
	if _, err := NewSite(repo, SiteConfig{Name: "x", Workers: 0, Core: core.Config{Alpha: 0.5}}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewSite(repo, SiteConfig{Name: "x", Workers: 1, Core: core.Config{Alpha: 7}}); err == nil {
		t.Error("bad core config accepted")
	}
}

func TestSiteSubmitRoundRobinsWorkers(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	site, err := NewSite(repo, SiteConfig{Name: "a", Workers: 2, Core: core.Config{Alpha: 0}})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := site.Submit(sp(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := site.Submit(sp(1, 2))
	r3, _ := site.Submit(sp(1, 2))
	if r1.Worker == r2.Worker {
		t.Fatal("consecutive jobs on the same worker")
	}
	if r3.Worker != r1.Worker {
		t.Fatal("rotation broken")
	}
	// Same image on each worker: first visit transfers, revisit reuses.
	if r1.Transferred == 0 || r2.Transferred == 0 {
		t.Fatal("first visits should transfer")
	}
	if r3.Transferred != 0 {
		t.Fatal("revisit should reuse the local copy")
	}
	if site.Jobs() != 3 {
		t.Fatalf("Jobs = %d", site.Jobs())
	}
}

func TestSiteMergeInvalidatesWorkerCopies(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	site, err := NewSite(repo, SiteConfig{Name: "a", Workers: 1, Core: core.Config{Alpha: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	site.Submit(sp(1, 2, 3))
	r, _ := site.Submit(sp(1, 2, 4)) // merges: image version bumps
	if r.Request.Op != core.OpMerge {
		t.Fatalf("expected merge, got %v", r.Request.Op)
	}
	if r.Transferred != r.Request.ImageSize {
		t.Fatalf("merged image not retransferred: %d vs %d", r.Transferred, r.Request.ImageSize)
	}
	// A hit on the merged image now reuses the fresh copy.
	r2, _ := site.Submit(sp(1, 2, 3))
	if r2.Request.Op != core.OpHit || r2.Transferred != 0 {
		t.Fatalf("hit after merge: op=%v transferred=%d", r2.Request.Op, r2.Transferred)
	}
}

func TestPolicies(t *testing.T) {
	repo := flatRepo(t, 20, 1)
	mkSites := func() []*Site {
		var sites []*Site
		for _, name := range []string{"a", "b", "c"} {
			s, err := NewSite(repo, SiteConfig{Name: name, Workers: 1, Core: core.Config{Alpha: 0.5}})
			if err != nil {
				t.Fatal(err)
			}
			sites = append(sites, s)
		}
		return sites
	}

	rr := &RoundRobin{}
	sites := mkSites()
	if rr.Pick(sp(1), sites) != 0 || rr.Pick(sp(1), sites) != 1 || rr.Pick(sp(1), sites) != 2 || rr.Pick(sp(1), sites) != 0 {
		t.Error("round robin order wrong")
	}

	aff := Affinity{}
	job := sp(1, 2, 3)
	first := aff.Pick(job, sites)
	for i := 0; i < 5; i++ {
		if aff.Pick(job, sites) != first {
			t.Fatal("affinity not stable")
		}
	}

	rnd := NewRandomPolicy(1)
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		counts[rnd.Pick(job, sites)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("random policy never picked site %d", i)
		}
	}

	if rr.Name() == "" || aff.Name() == "" || rnd.Name() == "" {
		t.Error("policies must have names")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := New(nil, &RoundRobin{}); err == nil {
		t.Error("empty cluster accepted")
	}
	repo := flatRepo(t, 5, 1)
	s, _ := NewSite(repo, SiteConfig{Name: "a", Workers: 1, Core: core.Config{Alpha: 0.5}})
	if _, err := New([]*Site{s}, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestClusterRunStreamReport(t *testing.T) {
	repo := genRepo(t)
	var sites []*Site
	for _, name := range []string{"site-a", "site-b"} {
		s, err := NewSite(repo, SiteConfig{
			Name:    name,
			Workers: 3,
			Core: core.Config{
				Alpha:    0.8,
				Capacity: repo.TotalSize(),
				MinHash:  core.DefaultMinHash(),
			},
			WorkerCapacity: repo.TotalSize() / 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, s)
	}
	c, err := New(sites, Affinity{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.Stream(workload.NewDepClosure(repo, 3), 30, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != int64(len(stream)) {
		t.Fatalf("Jobs = %d, want %d", rep.Jobs, len(stream))
	}
	if rep.Policy != "affinity" {
		t.Fatalf("Policy = %q", rep.Policy)
	}
	if len(rep.PerSite) != 2 {
		t.Fatalf("PerSite = %d", len(rep.PerSite))
	}
	var siteJobs int64
	for _, sr := range rep.PerSite {
		siteJobs += sr.Jobs
		if sr.Jobs > 0 && sr.Images == 0 {
			t.Errorf("site %s ran jobs but holds no images", sr.Name)
		}
	}
	if siteJobs != rep.Jobs {
		t.Fatal("per-site jobs don't sum to total")
	}
	// Repeated jobs at a sticky site must produce local reuse.
	if rep.WorkerLocalHitRate <= 0 {
		t.Error("no worker-local reuse despite repeated jobs")
	}
	if rep.WorkerTransferredBytes <= 0 || rep.HeadBytesWritten <= 0 {
		t.Error("missing byte accounting")
	}
}

func TestAffinityBeatsRandomOnWorkerReuse(t *testing.T) {
	repo := genRepo(t)
	build := func(policy Policy) Report {
		var sites []*Site
		for i := 0; i < 3; i++ {
			s, err := NewSite(repo, SiteConfig{
				Name:    string(rune('a' + i)),
				Workers: 2,
				Core:    core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()},
			})
			if err != nil {
				t.Fatal(err)
			}
			sites = append(sites, s)
		}
		c, err := New(sites, policy)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := workload.Stream(workload.NewDepClosure(repo, 5), 25, 6, 9)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.RunStream(stream)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	affinity := build(Affinity{})
	random := build(NewRandomPolicy(4))
	// Routing repeats of a job to the same site keeps both head and
	// worker caches warmer than scattering them.
	if affinity.WorkerTransferredBytes >= random.WorkerTransferredBytes {
		t.Errorf("affinity transferred %d >= random %d",
			affinity.WorkerTransferredBytes, random.WorkerTransferredBytes)
	}
}
