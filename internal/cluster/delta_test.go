package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func newDeltaSite(t *testing.T, alpha float64, workers int) (*DeltaSite, *Site) {
	t.Helper()
	repo := flatRepo(t, 40, 10)
	ds, err := NewDeltaSite(repo, SiteConfig{
		Name: "delta", Workers: workers,
		Core: core.Config{Alpha: alpha},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewSite(repo, SiteConfig{
		Name: "full", Workers: workers,
		Core: core.Config{Alpha: alpha},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, full
}

func TestDeltaFirstTransferIsFull(t *testing.T) {
	ds, _ := newDeltaSite(t, 0.9, 1)
	r, err := ds.Submit(sp(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Transferred != 30 {
		t.Fatalf("first transfer = %d, want 30", r.Transferred)
	}
	if ds.DeltaBytes() != 30 || ds.FullBytes() != 30 {
		t.Fatalf("accounting: delta %d, full %d", ds.DeltaBytes(), ds.FullBytes())
	}
}

func TestDeltaMergeShipsOnlyAddedPackages(t *testing.T) {
	ds, _ := newDeltaSite(t, 0.9, 1)
	ds.Submit(sp(1, 2, 3))
	// Merge adds {4}: the worker already holds {1,2,3}.
	r, err := ds.Submit(sp(1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Request.Op != core.OpMerge {
		t.Fatalf("op = %v", r.Request.Op)
	}
	if r.Transferred != 10 {
		t.Fatalf("delta transfer = %d, want 10 (one added package)", r.Transferred)
	}
	// A full-retransfer scheme would have shipped the whole 40-byte
	// merged image.
	if ds.FullBytes() != 30+40 {
		t.Fatalf("FullBytes = %d, want 70", ds.FullBytes())
	}
	if ds.Savings() <= 0 {
		t.Fatalf("Savings = %v", ds.Savings())
	}
}

func TestDeltaHitCostsNothing(t *testing.T) {
	ds, _ := newDeltaSite(t, 0.9, 1)
	ds.Submit(sp(1, 2, 3))
	r, err := ds.Submit(sp(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Request.Op != core.OpHit || r.Transferred != 0 {
		t.Fatalf("hit: op=%v transferred=%d", r.Request.Op, r.Transferred)
	}
}

func TestDeltaSplitIsFree(t *testing.T) {
	ds, _ := newDeltaSite(t, 0.9, 1)
	ds.Submit(sp(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	ds.Manager.Prune(0.9, 100) // reset hot window
	ds.Submit(sp(1, 2))
	ds.Submit(sp(1, 3))
	splits, err := ds.Manager.Prune(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 {
		t.Fatalf("splits = %d", len(splits))
	}
	// The split image {1,2,3} is a subset of the worker's copy: the
	// next job on it transfers nothing.
	r, err := ds.Submit(sp(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Request.Op != core.OpHit {
		t.Fatalf("op = %v", r.Request.Op)
	}
	if r.Transferred != 0 {
		t.Fatalf("post-split transfer = %d, want 0", r.Transferred)
	}
}

func TestDeltaWorkerEvictionForcesFullRetransfer(t *testing.T) {
	repo := flatRepo(t, 40, 10)
	ds, err := NewDeltaSite(repo, SiteConfig{
		Name: "tiny", Workers: 1,
		Core:           core.Config{Alpha: 0},
		WorkerCapacity: 35, // fits one 30-byte image, not two
	})
	if err != nil {
		t.Fatal(err)
	}
	ds.Submit(sp(1, 2, 3))           // image A on worker
	ds.Submit(sp(10, 11, 12))        // image B evicts A locally
	r, err := ds.Submit(sp(1, 2, 3)) // A is a head-node hit but gone locally
	if err != nil {
		t.Fatal(err)
	}
	if r.Request.Op != core.OpHit {
		t.Fatalf("op = %v", r.Request.Op)
	}
	if r.Transferred != 30 {
		t.Fatalf("transfer after local eviction = %d, want full 30", r.Transferred)
	}
}

// TestDeltaSavesOnRealisticStream runs the same stream through a delta
// site and a plain site: merging workloads see large transfer savings.
func TestDeltaSavesOnRealisticStream(t *testing.T) {
	repo := genRepo(t)
	ds, err := NewDeltaSite(repo, SiteConfig{
		Name: "delta", Workers: 4,
		Core: core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()},
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewSite(repo, SiteConfig{
		Name: "plain", Workers: 4,
		Core: core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()},
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.Stream(workload.NewDepClosure(repo, 3), 30, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range stream {
		if _, err := ds.Submit(job); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Submit(job); err != nil {
			t.Fatal(err)
		}
	}
	if ds.DeltaBytes() >= plain.WorkerTransferredBytes() {
		t.Fatalf("delta %d >= plain %d", ds.DeltaBytes(), plain.WorkerTransferredBytes())
	}
	if ds.Savings() < 0.2 {
		t.Errorf("savings = %.2f, expected substantial", ds.Savings())
	}
	// Identical cache decisions: same manager stats either way.
	if ds.Manager.Stats() != plain.Manager.Stats() {
		t.Fatal("delta site changed cache behaviour")
	}
}

// TestDeltaNeverExceedsFull replays random streams asserting the delta
// site's transfer for every job never exceeds what the plain site
// ships, and that cache decisions are identical throughout.
func TestDeltaNeverExceedsFull(t *testing.T) {
	repo := genRepo(t)
	for seed := int64(0); seed < 3; seed++ {
		ds, err := NewDeltaSite(repo, SiteConfig{
			Name: "d", Workers: 2,
			Core:           core.Config{Alpha: 0.85, MinHash: core.DefaultMinHash()},
			WorkerCapacity: repo.TotalSize() / 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewSite(repo, SiteConfig{
			Name: "p", Workers: 2,
			Core:           core.Config{Alpha: 0.85, MinHash: core.DefaultMinHash()},
			WorkerCapacity: repo.TotalSize() / 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		stream, err := workload.Stream(workload.NewDepClosure(repo, seed), 20, 3, seed+50)
		if err != nil {
			t.Fatal(err)
		}
		for i, job := range stream {
			dr, err := ds.Submit(job)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := plain.Submit(job)
			if err != nil {
				t.Fatal(err)
			}
			if dr.Request.Op != pr.Request.Op || dr.Request.ImageID != pr.Request.ImageID {
				t.Fatalf("seed %d job %d: cache decisions diverged", seed, i)
			}
			if dr.Transferred > pr.Transferred {
				t.Fatalf("seed %d job %d: delta %d > full %d", seed, i, dr.Transferred, pr.Transferred)
			}
		}
		if ds.DeltaBytes() > ds.FullBytes() {
			t.Fatalf("seed %d: delta total %d > full total %d", seed, ds.DeltaBytes(), ds.FullBytes())
		}
	}
}
