package cluster

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/telemetry"
)

func TestRegisterMetricsExposesPerSiteGauges(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	siteA, err := NewSite(repo, SiteConfig{Name: "alpha", Core: core.Config{Alpha: 0.5}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	siteB, err := NewSite(repo, SiteConfig{Name: "beta", Core: core.Config{Alpha: 0.5}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New([]*Site{siteA, siteB}, &RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg)

	// Round-robin: jobs 1 and 3 (identical) land on alpha — the repeat
	// reuses the worker's local copy; job 2 lands on beta.
	for _, job := range []struct{ a, b int }{{0, 1}, {2, 3}, {0, 1}} {
		if _, err := c.Submit(sp(pkggraph.PkgID(job.a), pkggraph.PkgID(job.b))); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := telemetry.ParseText(&buf)
	if err != nil {
		t.Fatalf("cluster metrics did not parse: %v\n%s", err, buf.String())
	}

	alpha := telemetry.Label{Key: "site", Value: "alpha"}
	beta := telemetry.Label{Key: "site", Value: "beta"}
	if v, ok := sc.Value("landlord_site_jobs", alpha); !ok || v != 2 {
		t.Errorf("alpha jobs = %v (present=%v)", v, ok)
	}
	if v, ok := sc.Value("landlord_site_jobs", beta); !ok || v != 1 {
		t.Errorf("beta jobs = %v (present=%v)", v, ok)
	}
	// alpha transferred its 200-byte image once; the repeat was a local
	// hit, so the hit rate is 0.5.
	if v, ok := sc.Value("landlord_site_transferred_bytes", alpha); !ok || v != 200 {
		t.Errorf("alpha transferred = %v (present=%v)", v, ok)
	}
	if v, ok := sc.Value("landlord_site_local_hit_rate", alpha); !ok || v != 0.5 {
		t.Errorf("alpha local hit rate = %v (present=%v)", v, ok)
	}
	if v, ok := sc.Value("landlord_site_cached_bytes", alpha); !ok || v != 200 {
		t.Errorf("alpha cached bytes = %v (present=%v)", v, ok)
	}
	if v, ok := sc.Value("landlord_site_head_written_bytes", beta); !ok || v != 200 {
		t.Errorf("beta head written = %v (present=%v)", v, ok)
	}
	if v, ok := sc.Value("landlord_site_images", beta); !ok || v != 1 {
		t.Errorf("beta images = %v (present=%v)", v, ok)
	}
}
