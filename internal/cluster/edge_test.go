package cluster

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
)

// badPolicy returns a fixed (possibly invalid) site index.
type badPolicy struct{ idx int }

func (p badPolicy) Pick(job spec.Spec, sites []*Site) int { return p.idx }
func (p badPolicy) Name() string                          { return "bad" }

// TestClusterConstructionEdges drives the degenerate assemblies
// table-style: no sites, nil policy, a policy pointing outside the
// site list. Each must fail loudly instead of scheduling into thin
// air.
func TestClusterConstructionEdges(t *testing.T) {
	repo := flatRepo(t, 8, 10)
	site, err := NewSite(repo, SiteConfig{Name: "s0", Core: core.Config{Alpha: 0.5}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		sites   []*Site
		policy  Policy
		newErr  string // non-empty: New must fail with this substring
		pickErr string // non-empty: Submit must fail with this substring
	}{
		{name: "empty cluster", sites: nil, policy: &RoundRobin{}, newErr: "no sites"},
		{name: "nil policy", sites: []*Site{site}, policy: nil, newErr: "nil policy"},
		{name: "policy picks negative site", sites: []*Site{site}, policy: badPolicy{-1}, pickErr: "invalid site"},
		{name: "policy picks site out of range", sites: []*Site{site}, policy: badPolicy{1}, pickErr: "invalid site"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.sites, tc.policy)
			if tc.newErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.newErr) {
					t.Fatalf("New: err = %v, want substring %q", err, tc.newErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			_, err = c.Submit(sp(0, 1))
			if err == nil || !strings.Contains(err.Error(), tc.pickErr) {
				t.Fatalf("Submit: err = %v, want substring %q", err, tc.pickErr)
			}
		})
	}
}

// TestSingleWorkerAtCapacity pins the scratch-overflow contract for a
// site with one worker whose scratch cannot hold the working set: like
// the head-node cache, the worker may hold ONE oversized image (jobs
// must run somewhere) but never two, and every alternation retransfers.
func TestSingleWorkerAtCapacity(t *testing.T) {
	repo := flatRepo(t, 12, 10)
	for _, tc := range []struct {
		name     string
		capacity int64
		jobs     []spec.Spec
		wantImgs int
		wantEvic int64
		wantXfer int64 // total transferred bytes
	}{
		{
			// Each 3-package image (30B) exceeds the 20B scratch: the
			// worker still runs every job, holding exactly the one
			// oversized current image.
			name: "image larger than scratch", capacity: 20,
			jobs:     []spec.Spec{sp(0, 1, 2), sp(3, 4, 5), sp(0, 1, 2)},
			wantImgs: 1, wantEvic: 2, wantXfer: 90,
		},
		{
			// Exact fit: the second image evicts the first, the third
			// evicts the second — LRU thrash, full retransfers.
			name: "exact fit thrash", capacity: 30,
			jobs:     []spec.Spec{sp(0, 1, 2), sp(3, 4, 5), sp(0, 1, 2)},
			wantImgs: 1, wantEvic: 2, wantXfer: 90,
		},
		{
			// Room for both images: the repeat is a local hit.
			name: "both fit", capacity: 60,
			jobs:     []spec.Spec{sp(0, 1, 2), sp(3, 4, 5), sp(0, 1, 2)},
			wantImgs: 2, wantEvic: 0, wantXfer: 60,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// α=0 keeps images identical to jobs, so the byte math is
			// exact; unlimited head capacity keeps image IDs stable.
			site, err := NewSite(repo, SiteConfig{
				Name: "edge", Core: core.Config{Alpha: 0},
				Workers: 1, WorkerCapacity: tc.capacity,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, job := range tc.jobs {
				if _, err := site.Submit(job); err != nil {
					t.Fatalf("job %d: %v", i, err)
				}
			}
			w := site.Workers[0]
			if got := w.CachedImages(); got != tc.wantImgs {
				t.Errorf("worker holds %d image(s), want %d", got, tc.wantImgs)
			}
			if got := w.Stats().Evictions; got != tc.wantEvic {
				t.Errorf("evictions = %d, want %d", got, tc.wantEvic)
			}
			if got := w.Stats().TransferredBytes; got != tc.wantXfer {
				t.Errorf("transferred %d bytes, want %d", got, tc.wantXfer)
			}
			if tc.wantImgs == 1 && w.CachedBytes() > tc.capacity && w.CachedImages() > 1 {
				t.Errorf("worker over capacity with %d images; only a single oversized image may overflow", w.CachedImages())
			}
		})
	}
}

// TestDeltaSyncStalePeer drives the delta-transfer bookkeeping through
// the stale-peer paths, table-style over the ways a worker's held
// record can rot: the image merged forward under its ID (ship the
// diff), the peer silently lost its copy (full retransfer — the record
// must not be trusted), and the peer's copy drifted to a version the
// record does not describe (full retransfer).
func TestDeltaSyncStalePeer(t *testing.T) {
	base := sp(0, 1, 2)     // 30 bytes
	grown := sp(0, 1, 2, 3) // merges into base's image: d = 1/4 < α
	for _, tc := range []struct {
		name string
		// corrupt runs between the merge-forward submit and the final
		// re-submit of `grown`, putting the peer in the stale state; id
		// is the merged image's ID.
		corrupt  func(s *DeltaSite, id uint64)
		wantXfer int64 // bytes the final Submit(grown) must ship
	}{
		{
			// No corruption: the worker holds the current version, the
			// final submit ships nothing.
			name: "current copy", corrupt: func(s *DeltaSite, id uint64) {}, wantXfer: 0,
		},
		{
			// The peer lost the copy (head-initiated invalidation, or a
			// crashed scratch disk): the held record is dropped and the
			// full image ships again.
			name: "peer lost its copy",
			corrupt: func(s *DeltaSite, id uint64) {
				s.Workers[0].Invalidate(id)
			},
			wantXfer: 40,
		},
		{
			// The peer's copy drifted to a version the site never
			// recorded (an out-of-band transfer): the record mismatch
			// must force a full retransfer, not a bogus delta.
			name: "version drift",
			corrupt: func(s *DeltaSite, id uint64) {
				s.Workers[0].Run(id, 99, 40)
			},
			wantXfer: 40,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			repo := flatRepo(t, 12, 10)
			site, err := NewDeltaSite(repo, SiteConfig{
				Name: "delta", Core: core.Config{Alpha: 0.5}, Workers: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := site.Submit(base)
			if err != nil {
				t.Fatal(err)
			}
			if res.Transferred != 30 {
				t.Fatalf("initial transfer = %d bytes, want the full 30", res.Transferred)
			}
			res, err = site.Submit(grown)
			if err != nil {
				t.Fatal(err)
			}
			if res.Request.Op != core.OpMerge {
				t.Fatalf("second submit performed %v, want merge (the delta scenario's premise)", res.Request.Op)
			}
			if res.Transferred != 10 {
				t.Fatalf("merge-forward shipped %d bytes, want the 10-byte delta", res.Transferred)
			}

			tc.corrupt(site, res.Request.ImageID)

			res, err = site.Submit(grown)
			if err != nil {
				t.Fatal(err)
			}
			if res.Request.Op != core.OpHit {
				t.Fatalf("final submit performed %v, want hit", res.Request.Op)
			}
			if res.Transferred != tc.wantXfer {
				t.Errorf("final transfer = %d bytes, want %d", res.Transferred, tc.wantXfer)
			}
			if got, want := site.DeltaBytes(), 40+tc.wantXfer; got != want {
				t.Errorf("DeltaBytes = %d, want %d", got, want)
			}
		})
	}
}
