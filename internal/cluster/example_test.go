package cluster_test

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Example runs two jobs through a one-site deployment: the first
// transfers the prepared image to a worker, the repeat reuses the
// worker's local copy.
func Example() {
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "x86", Tier: pkggraph.TierCore, Size: 100, FileCount: 1},
		{ID: 1, Name: "app", Version: "1.0", Platform: "x86", Tier: pkggraph.TierApplication, Size: 10, FileCount: 1, Deps: []pkggraph.PkgID{0}},
	}
	repo, err := pkggraph.New(pkgs)
	if err != nil {
		log.Fatal(err)
	}
	site, err := cluster.NewSite(repo, cluster.SiteConfig{
		Name:    "site-a",
		Workers: 1,
		Core:    core.Config{Alpha: 0.8},
	})
	if err != nil {
		log.Fatal(err)
	}
	job := spec.WithClosure(repo, []pkggraph.PkgID{1})
	for i := 0; i < 2; i++ {
		res, err := site.Submit(job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on worker %d, transferred %d bytes\n",
			res.Request.Op, res.Worker, res.Transferred)
	}

	// Output:
	// insert on worker 0, transferred 110 bytes
	// hit on worker 0, transferred 0 bytes
}
