package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/resilience"
)

func healthSite(t testing.TB, workers int) *Site {
	t.Helper()
	site, err := NewSite(flatRepo(t, 4, 100), SiteConfig{
		Name: "s", Core: core.Config{Alpha: 0.5}, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site
}

// TestWorkerCircuitColdMigration: consecutive failures open a worker's
// circuit, the rotation routes around it (counting cold migrations),
// and after the job-count cool-down the worker is probed back in.
func TestWorkerCircuitColdMigration(t *testing.T) {
	site := healthSite(t, 3)
	site.SetHealthPolicy(HealthPolicy{Failures: 2, CooldownJobs: 3})

	submit := func() int {
		t.Helper()
		res, err := site.Submit(sp(0))
		if err != nil {
			t.Fatal(err)
		}
		return res.Worker
	}

	if w := submit(); w != 0 {
		t.Fatalf("first job on worker %d, want 0", w)
	}

	// Worker 1's daemon dies: two consecutive failures open its circuit.
	if err := site.ReportJobFailure(1); err != nil {
		t.Fatal(err)
	}
	if st, _ := site.WorkerCircuit(1); st != resilience.BreakerClosed {
		t.Fatalf("circuit = %v after one failure, want closed", st)
	}
	if err := site.ReportJobFailure(1); err != nil {
		t.Fatal(err)
	}
	if st, _ := site.WorkerCircuit(1); st != resilience.BreakerOpen {
		t.Fatalf("circuit = %v after %d failures, want open", 2, st)
	}

	// The rotation skips worker 1 while its circuit is open, then the
	// cool-down (3 site jobs) elapses and worker 1 takes a probe job.
	want := []int{2, 0, 2, 0, 1}
	for i, w := range want {
		if got := submit(); got != w {
			t.Fatalf("job %d on worker %d, want %d (routing around the open circuit)", i, got, w)
		}
	}
	if got := site.ColdMigrations(); got != 2 {
		t.Errorf("cold migrations = %d, want 2", got)
	}
	if st, _ := site.WorkerCircuit(1); st != resilience.BreakerHalfOpen {
		t.Fatalf("probed worker circuit = %v, want half-open", st)
	}

	// The probe succeeds: the circuit closes and the worker rejoins the
	// rotation for good.
	if err := site.ReportJobSuccess(1); err != nil {
		t.Fatal(err)
	}
	if st, _ := site.WorkerCircuit(1); st != resilience.BreakerClosed {
		t.Fatalf("post-probe circuit = %v, want closed", st)
	}

	rep := mustReport(t, site)
	if rep.PerSite[0].ColdMigrations != 2 || rep.PerSite[0].CircuitOpens != 1 {
		t.Errorf("report: migrations %d opens %d, want 2 and 1",
			rep.PerSite[0].ColdMigrations, rep.PerSite[0].CircuitOpens)
	}
	if rep.ColdMigrations != 2 {
		t.Errorf("aggregate cold migrations = %d, want 2", rep.ColdMigrations)
	}
}

// TestWorkerProbeFailureReopens: a failure during the half-open probe
// re-opens the circuit immediately, no failure accumulation.
func TestWorkerProbeFailureReopens(t *testing.T) {
	site := healthSite(t, 2)
	site.SetHealthPolicy(HealthPolicy{Failures: 1, CooldownJobs: 1})

	site.ReportJobFailure(1)
	if st, _ := site.WorkerCircuit(1); st != resilience.BreakerOpen {
		t.Fatalf("circuit = %v, want open (Failures=1)", st)
	}
	// Two jobs elapse the 1-job cool-down; worker 1 probes and fails.
	site.Submit(sp(0))
	site.Submit(sp(0))
	if st, _ := site.WorkerCircuit(1); st != resilience.BreakerHalfOpen {
		t.Fatalf("circuit = %v after cool-down, want half-open", st)
	}
	site.ReportJobFailure(1)
	if st, _ := site.WorkerCircuit(1); st != resilience.BreakerOpen {
		t.Fatalf("circuit = %v after failed probe, want open", st)
	}
	if site.circuitOpens != 2 {
		t.Errorf("circuit opens = %d, want 2", site.circuitOpens)
	}
}

// TestAllCircuitsOpenForcesDispatch: a site never refuses its job
// stream — with every circuit open, the original placement is forced
// and doubles as the probe.
func TestAllCircuitsOpenForcesDispatch(t *testing.T) {
	site := healthSite(t, 1)
	site.SetHealthPolicy(HealthPolicy{Failures: 1, CooldownJobs: 100})

	site.ReportJobFailure(0)
	res, err := site.Submit(sp(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != 0 {
		t.Fatalf("forced dispatch on worker %d, want 0", res.Worker)
	}
	if st, _ := site.WorkerCircuit(0); st != resilience.BreakerHalfOpen {
		t.Fatalf("forced dispatch left circuit %v, want half-open (it is the probe)", st)
	}
	if site.ColdMigrations() != 0 {
		t.Errorf("forced dispatch counted as a migration")
	}
	if err := site.ReportJobSuccess(0); err != nil {
		t.Fatal(err)
	}
	if st, _ := site.WorkerCircuit(0); st != resilience.BreakerClosed {
		t.Fatalf("circuit = %v after probe success, want closed", st)
	}
}

// TestHealthPolicyOptional: without SetHealthPolicy, outcome reports
// are accepted no-ops and every circuit reads closed.
func TestHealthPolicyOptional(t *testing.T) {
	site := healthSite(t, 2)
	if err := site.ReportJobFailure(0); err != nil {
		t.Fatalf("report without policy: %v", err)
	}
	if st, err := site.WorkerCircuit(0); err != nil || st != resilience.BreakerClosed {
		t.Fatalf("circuit without policy = %v (%v), want closed", st, err)
	}
	site.SetHealthPolicy(HealthPolicy{})
	if err := site.ReportJobFailure(7); err == nil {
		t.Fatal("unknown worker id accepted")
	}
	if site.healthPolicy.Failures != 3 || site.healthPolicy.CooldownJobs != 10 {
		t.Errorf("defaults = %+v", site.healthPolicy)
	}
}

func mustReport(t testing.TB, sites ...*Site) Report {
	t.Helper()
	c, err := New(sites, &RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	return c.Report()
}
