package cluster

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// applyAll drives follower through frames in order, resolving gaps the
// way the wire protocol does: on DeltaGap the follower asks the leader
// for a Full frame.
func applyAll(t *testing.T, dir *Directory, f *Follower, frames []DirDelta) {
	t.Helper()
	for _, fr := range frames {
		if f.Apply(fr) == DeltaGap {
			if got := f.Apply(dir.Full()); got != DeltaApplied && got != DeltaStale {
				t.Fatalf("full resync after gap: %v", got)
			}
		}
	}
}

func assertConverged(t *testing.T, dir *Directory, f *Follower) {
	t.Helper()
	// A final delta from the follower's ack must close any remaining
	// distance (the steady-state heartbeat does exactly this).
	if res := f.Apply(dir.DeltaSince(f.Rev())); res == DeltaGap {
		if got := f.Apply(dir.Full()); got != DeltaApplied && got != DeltaStale {
			t.Fatalf("final full resync: %v", got)
		}
	}
	if f.Rev() != dir.Rev() {
		t.Fatalf("follower rev %d, leader rev %d", f.Rev(), dir.Rev())
	}
	if !reflect.DeepEqual(f.Entries(), dir.sortedEntries()) {
		t.Fatalf("directories diverge:\nfollower: %+v\nleader:   %+v", f.Entries(), dir.sortedEntries())
	}
}

func TestDirectoryDeltaBasics(t *testing.T) {
	dir := NewDirectory(0)
	f := NewFollower()

	dir.Put(DirEntry{ID: 1, Version: 1, Size: 100})
	dir.Put(DirEntry{ID: 2, Version: 1, Size: 200})
	d := dir.DeltaSince(0)
	if d.From != 0 || d.To != 2 || len(d.Upserts) != 2 {
		t.Fatalf("unexpected delta: %+v", d)
	}
	if got := f.Apply(d); got != DeltaApplied {
		t.Fatalf("apply: %v", got)
	}

	// Idempotent Put must not move the revision.
	rev := dir.Rev()
	dir.Put(DirEntry{ID: 1, Version: 1, Size: 100})
	if dir.Rev() != rev {
		t.Fatalf("idempotent Put bumped rev %d -> %d", rev, dir.Rev())
	}

	// Version bump coalesces with a later remove: only the remove ships.
	dir.Put(DirEntry{ID: 2, Version: 2, Size: 222})
	dir.Remove(2)
	d = dir.DeltaSince(f.Rev())
	if len(d.Upserts) != 0 || len(d.Removes) != 1 || d.Removes[0] != 2 {
		t.Fatalf("coalesced delta wrong: %+v", d)
	}
	if got := f.Apply(d); got != DeltaApplied {
		t.Fatalf("apply coalesced: %v", got)
	}
	assertConverged(t, dir, f)
}

func TestDirectoryDeltaStaleAndGap(t *testing.T) {
	dir := NewDirectory(0)
	f := NewFollower()
	dir.Put(DirEntry{ID: 1, Version: 1, Size: 10})
	first := dir.DeltaSince(0)
	if got := f.Apply(first); got != DeltaApplied {
		t.Fatalf("apply: %v", got)
	}
	// Duplicate of an already-applied frame: stale, no change.
	if got := f.Apply(first); got != DeltaStale {
		t.Fatalf("duplicate frame: got %v, want stale", got)
	}
	// A frame whose From is ahead of the follower: gap.
	dir.Put(DirEntry{ID: 2, Version: 1, Size: 20})
	dir.Put(DirEntry{ID: 3, Version: 1, Size: 30})
	ahead := dir.DeltaSince(2) // follower is at rev 1
	if got := f.Apply(ahead); got != DeltaGap {
		t.Fatalf("gapped frame: got %v, want gap", got)
	}
	if f.Rev() != 1 {
		t.Fatalf("gap mutated follower to rev %d", f.Rev())
	}
	// Full resync closes the gap; a stale Full afterwards is dropped.
	full := dir.Full()
	if got := f.Apply(full); got != DeltaApplied {
		t.Fatalf("full: %v", got)
	}
	if got := f.Apply(full); got != DeltaStale {
		t.Fatalf("replayed full: got %v, want stale", got)
	}
	assertConverged(t, dir, f)
}

func TestDirectoryJournalAgingForcesFull(t *testing.T) {
	dir := NewDirectory(8)
	for i := 0; i < 40; i++ {
		dir.Put(DirEntry{ID: uint64(i), Version: 1, Size: int64(i)})
	}
	d := dir.DeltaSince(2) // long since aged out of the 8-entry journal
	if !d.Full {
		t.Fatalf("aged-out ack did not force a full frame: %+v", d)
	}
	f := NewFollower()
	if got := f.Apply(d); got != DeltaApplied {
		t.Fatalf("apply full: %v", got)
	}
	assertConverged(t, dir, f)
}

// TestGossipLossyTransport is the out-of-order delta-application test
// over a lossy wire: frames are generated from a seeded mutation
// schedule, then delivered reordered (bounded shuffle window) and
// duplicated. The follower must drop stale frames, detect gaps, resync
// via Full frames, and converge to the leader's exact directory —
// covering the transport-level stale-peer cases the in-process
// TestDeltaSyncStalePeer cannot reach.
func TestGossipLossyTransport(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := NewDirectory(64)
		f := NewFollower()

		// Generate frames the way heartbeats would: mutate a little,
		// emit DeltaSince(lastAck) — but only advance the ack when the
		// frame would have been delivered in order, so later frames
		// genuinely overlap and conflict.
		var frames []DirDelta
		ack := uint64(0)
		live := map[uint64]uint64{} // id -> version
		for batch := 0; batch < 60; batch++ {
			for n := rng.Intn(4); n >= 0; n-- {
				id := uint64(rng.Intn(24))
				if v, ok := live[id]; ok && rng.Float64() < 0.3 {
					delete(live, id)
					dir.Remove(id)
					_ = v
				} else {
					live[id]++
					dir.Put(DirEntry{ID: id, Version: live[id], Size: int64(id * 10)})
				}
			}
			d := dir.DeltaSince(ack)
			frames = append(frames, d)
			if rng.Float64() < 0.7 { // the "ack arrived" case
				ack = d.To
			}
		}

		// Lossy delivery: duplicate ~30% of frames, then shuffle within
		// a sliding window of 6 so ordering is violated but not
		// unboundedly.
		delivered := make([]DirDelta, 0, len(frames)*2)
		for _, fr := range frames {
			delivered = append(delivered, fr)
			if rng.Float64() < 0.3 {
				delivered = append(delivered, fr)
			}
		}
		// Frames cross a JSON hop like the real heartbeat body.
		for i, fr := range delivered {
			b, err := json.Marshal(fr)
			if err != nil {
				t.Fatalf("seed %d: marshal: %v", seed, err)
			}
			var back DirDelta
			if err := json.Unmarshal(b, &back); err != nil {
				t.Fatalf("seed %d: unmarshal: %v", seed, err)
			}
			delivered[i] = back
		}
		for i := range delivered {
			j := i + rng.Intn(6)
			if j >= len(delivered) {
				j = len(delivered) - 1
			}
			delivered[i], delivered[j] = delivered[j], delivered[i]
		}

		applyAll(t, dir, f, delivered)
		assertConverged(t, dir, f)
	}
}

// TestFollowerReset pins the generation-change contract: after Reset a
// follower accepts a fresh leader's stream from revision zero.
func TestFollowerReset(t *testing.T) {
	old := NewDirectory(0)
	old.Put(DirEntry{ID: 9, Version: 9, Size: 9})
	f := NewFollower()
	if got := f.Apply(old.Full()); got != DeltaApplied {
		t.Fatalf("apply: %v", got)
	}

	// Leader restarts: new Directory, revisions restart from zero. Its
	// early frames would look stale to the old follower state.
	fresh := NewDirectory(0)
	fresh.Put(DirEntry{ID: 1, Version: 1, Size: 1})
	if got := f.Apply(fresh.DeltaSince(0)); got != DeltaStale {
		t.Fatalf("pre-reset frame: got %v, want stale (this is why Reset exists)", got)
	}
	f.Reset()
	if got := f.Apply(fresh.DeltaSince(0)); got != DeltaApplied {
		t.Fatalf("post-reset frame: %v", got)
	}
	assertConverged(t, fresh, f)
}
