package cluster

import (
	"repro/internal/telemetry"
)

// RegisterMetrics exposes per-site transfer and reuse gauges in reg,
// labelled by site name:
//
//	landlord_site_jobs{site}               jobs executed at the site
//	landlord_site_images{site}             images in the head-node cache
//	landlord_site_cached_bytes{site}       bytes in the head-node cache
//	landlord_site_head_written_bytes{site} image bytes written by the head node
//	landlord_site_transferred_bytes{site}  image bytes shipped head -> workers
//	landlord_site_local_hit_rate{site}     fraction of jobs reusing a local copy
//
// Values are computed at scrape time from live site state. Sites and
// the registry scraper must not race: scrape between job batches, or
// after RunStream completes (the Cluster itself is single-threaded).
func (c *Cluster) RegisterMetrics(reg *telemetry.Registry) {
	for _, site := range c.Sites {
		site.RegisterMetrics(reg)
	}
}

// RegisterMetrics registers the site's gauges in reg (see
// Cluster.RegisterMetrics for the series list).
func (s *Site) RegisterMetrics(reg *telemetry.Registry) {
	label := telemetry.Label{Key: "site", Value: s.Name}
	reg.GaugeFunc("landlord_site_jobs", "Jobs executed at the site",
		func() float64 { return float64(s.Jobs()) }, label)
	reg.GaugeFunc("landlord_site_images", "Images cached at the site head node",
		func() float64 { return float64(s.Manager.Len()) }, label)
	reg.GaugeFunc("landlord_site_cached_bytes", "Bytes cached at the site head node",
		func() float64 { return float64(s.Manager.TotalData()) }, label)
	reg.GaugeFunc("landlord_site_head_written_bytes", "Image bytes written by the site head node",
		func() float64 { return float64(s.Manager.Stats().BytesWritten) }, label)
	reg.GaugeFunc("landlord_site_transferred_bytes", "Image bytes shipped from head node to workers",
		func() float64 { return float64(s.WorkerTransferredBytes()) }, label)
	reg.GaugeFunc("landlord_site_local_hit_rate", "Fraction of jobs reusing a worker-local image copy",
		func() float64 { return s.WorkerLocalHitRate() }, label)
	reg.GaugeFunc("landlord_site_cold_migrations", "Jobs rerouted off open-circuit workers",
		func() float64 { return float64(s.coldMigrations) }, label)
	reg.GaugeFunc("landlord_site_circuit_opens", "Worker circuit-open transitions at the site",
		func() float64 { return float64(s.circuitOpens) }, label)
}
