package cluster

import (
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Delta transfers.
//
// When the head node merges a specification into an image, the new
// image is a strict superset of the old one, so a worker holding the
// previous version only needs the added packages — not a full
// retransfer. Conversely, a split image is a subset of what the worker
// holds, so the worker trims locally at zero transfer cost. This is
// the composition property of Section IV paying off at the transport
// layer: because images are unions of package sets (not opaque layer
// stacks), deltas are computable exactly.
//
// DeltaSite wraps a Site with per-worker content tracking: for every
// (worker, image) pair it remembers the package set the worker holds,
// computes the exact difference on updates, and charges only those
// bytes.

// heldCopy records what a worker currently holds for one image.
type heldCopy struct {
	version uint64
	spec    spec.Spec
}

// DeltaSite is a Site whose worker transfers are delta-encoded.
type DeltaSite struct {
	*Site
	repo *pkggraph.Repo
	held map[int]map[uint64]heldCopy // worker ID -> image ID -> copy

	deltaBytes int64 // bytes actually shipped
	fullBytes  int64 // bytes a full-retransfer scheme would ship
}

// NewDeltaSite builds a delta-transfer site over repo.
func NewDeltaSite(repo *pkggraph.Repo, cfg SiteConfig) (*DeltaSite, error) {
	site, err := NewSite(repo, cfg)
	if err != nil {
		return nil, err
	}
	return &DeltaSite{
		Site: site,
		repo: repo,
		held: make(map[int]map[uint64]heldCopy),
	}, nil
}

// DeltaBytes returns the bytes shipped with delta encoding.
func (s *DeltaSite) DeltaBytes() int64 { return s.deltaBytes }

// FullBytes returns the bytes a version-blind full-retransfer scheme
// would have shipped for the same job sequence.
func (s *DeltaSite) FullBytes() int64 { return s.fullBytes }

// Savings returns 1 - delta/full: the fraction of transfer volume the
// delta encoding eliminated.
func (s *DeltaSite) Savings() float64 {
	if s.fullBytes == 0 {
		return 0
	}
	return 1 - float64(s.deltaBytes)/float64(s.fullBytes)
}

// Submit prepares an image and ships only the worker's missing
// packages.
func (s *DeltaSite) Submit(job spec.Spec) (SiteResult, error) {
	res, err := s.Manager.Request(job)
	if err != nil {
		return SiteResult{}, err
	}

	w := s.Workers[s.next]
	s.next = (s.next + 1) % len(s.Workers)
	s.jobs++

	workerHeld := s.held[w.ID]
	if workerHeld == nil {
		workerHeld = make(map[uint64]heldCopy)
		s.held[w.ID] = workerHeld
	}
	// Trust the held record only while the worker still has the copy
	// it describes (LRU eviction may have dropped it since).
	prev, have := workerHeld[res.ImageID]
	if have {
		wi, present := w.images[res.ImageID]
		if !present || wi.version != prev.version {
			have = false
			delete(workerHeld, res.ImageID)
		}
	}

	var transfer int64
	switch {
	case have && prev.version == res.ImageVersion:
		transfer = 0
	case have:
		// The image changed under its ID. Ship only the packages the
		// worker is missing; dropped packages (splits) cost nothing.
		if img, ok := s.Manager.ImageByID(res.ImageID); ok {
			transfer = img.Spec.Diff(prev.spec).Size(s.repo)
		} else {
			transfer = res.ImageSize // image already evicted upstream
		}
		s.fullBytes += res.ImageSize
	default:
		transfer = res.ImageSize
		s.fullBytes += res.ImageSize
	}
	s.deltaBytes += transfer

	w.applyTransfer(res.ImageID, res.ImageVersion, res.ImageSize, transfer)
	if img, ok := s.Manager.ImageByID(res.ImageID); ok {
		workerHeld[res.ImageID] = heldCopy{version: res.ImageVersion, spec: img.Spec}
	}
	// Forget records for copies the worker evicted to fit this one.
	for id := range workerHeld {
		if _, present := w.images[id]; !present {
			delete(workerHeld, id)
		}
	}

	return SiteResult{
		Site:        s.Name,
		Worker:      w.ID,
		Request:     res,
		Transferred: transfer,
	}, nil
}
