// Package cluster models the distributed deployment the paper targets:
// multiple computing sites, each with a head node running a LANDLORD
// cache and a pool of worker nodes with local scratch space for images.
//
// "We also suppose that each compute node has scratch space available
// for storing container images locally, but that the total repository
// contents or the collection of all container images may be too large
// to store on every worker node." (Section V) — workers therefore keep
// an LRU cache of images keyed by (image ID, content version); when a
// job is dispatched to a worker whose copy is absent or stale, the
// image is transferred from the head node and the bytes are accounted.
//
// A Cluster spreads one job stream over several Sites under a pluggable
// scheduling Policy, capturing the paper's observation that "each
// computing site has a different set of users and projects" and that
// images end up "replicated across sites and to many individual
// nodes".
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// workerImage is one locally cached image copy.
type workerImage struct {
	version uint64
	size    int64
	lastUse uint64
}

// WorkerStats counts one worker node's activity.
type WorkerStats struct {
	Jobs             int64
	LocalHits        int64 // job ran on an already-present image copy
	Transfers        int64 // image copies pulled from the head node
	TransferredBytes int64
	Evictions        int64
}

// Worker is a compute node with bounded local image scratch.
type Worker struct {
	ID       int
	Capacity int64 // scratch bytes; 0 = unlimited

	images map[uint64]*workerImage
	used   int64
	clock  uint64
	stats  WorkerStats
}

// NewWorker creates a worker with the given scratch capacity.
func NewWorker(id int, capacity int64) *Worker {
	return &Worker{ID: id, Capacity: capacity, images: make(map[uint64]*workerImage)}
}

// Stats returns a copy of the worker's counters.
func (w *Worker) Stats() WorkerStats { return w.stats }

// CachedBytes returns the bytes currently held in local scratch.
func (w *Worker) CachedBytes() int64 { return w.used }

// CachedImages returns the number of locally held image copies.
func (w *Worker) CachedImages() int { return len(w.images) }

// Run executes one job against image (id, version, size): reuses the
// local copy when present and current, otherwise transfers the image
// (evicting LRU copies to fit). It returns the bytes transferred for
// this job.
func (w *Worker) Run(id, version uint64, size int64) int64 {
	if img, ok := w.images[id]; ok && img.version == version {
		w.applyTransfer(id, version, size, 0)
		return 0
	}
	w.applyTransfer(id, version, size, size)
	return size
}

// applyTransfer installs or refreshes the local copy of image (id,
// version, size), accounting `transfer` bytes of network cost (zero
// for a reuse; less than size when the update was delta-encoded).
func (w *Worker) applyTransfer(id, version uint64, size, transfer int64) {
	w.clock++
	w.stats.Jobs++
	if img, ok := w.images[id]; ok {
		if img.version == version {
			img.lastUse = w.clock
			w.stats.LocalHits++
			return
		}
		// Stale copy: drop it before installing the new version.
		w.used -= img.size
		delete(w.images, id)
	}
	w.evictFor(size)
	w.images[id] = &workerImage{version: version, size: size, lastUse: w.clock}
	w.used += size
	w.stats.Transfers++
	w.stats.TransferredBytes += transfer
}

// Invalidate drops a local copy (the head node deleted the image).
func (w *Worker) Invalidate(id uint64) {
	if img, ok := w.images[id]; ok {
		w.used -= img.size
		delete(w.images, id)
	}
}

// evictFor makes room for an incoming image of the given size.
func (w *Worker) evictFor(incoming int64) {
	if w.Capacity <= 0 {
		return
	}
	for w.used+incoming > w.Capacity && len(w.images) > 0 {
		var victimID uint64
		var victim *workerImage
		for id, img := range w.images {
			if victim == nil || img.lastUse < victim.lastUse ||
				(img.lastUse == victim.lastUse && id < victimID) {
				victim, victimID = img, id
			}
		}
		w.used -= victim.size
		delete(w.images, victimID)
		w.stats.Evictions++
	}
}

// SiteConfig parameterizes one computing site.
type SiteConfig struct {
	Name string
	// Core configures the site's LANDLORD head-node cache.
	Core core.Config
	// Workers is the number of worker nodes.
	Workers int
	// WorkerCapacity is each worker's scratch size in bytes
	// (0 = unlimited).
	WorkerCapacity int64
}

// Site is one computing site: a LANDLORD head-node cache plus workers.
// Jobs submitted to a site are prepared by the head node and dispatched
// to the least-recently-used worker in rotation.
type Site struct {
	Name    string
	Manager *core.Manager
	Workers []*Worker

	next int // round-robin dispatch cursor
	jobs int64

	// Worker health circuits (health.go): nil until SetHealthPolicy.
	healthPolicy   HealthPolicy
	health         []workerHealth
	coldMigrations int64
	circuitOpens   int64

	// spans, when set via SetSpanTracer, records one trace per
	// submitted job: the core phases plus the head-to-worker dispatch
	// hop. Nil keeps submission untraced.
	spans *telemetry.SpanTracer
}

// SetSpanTracer installs span tracing on the site. Sites embedded in a
// server share the server's tracer so job traces land in the same
// tail-sampling ring. Call before submitting; not safe to change while
// jobs are in flight.
func (s *Site) SetSpanTracer(t *telemetry.SpanTracer) { s.spans = t }

// NewSite builds a site over repo.
func NewSite(repo *pkggraph.Repo, cfg SiteConfig) (*Site, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: site %q needs at least one worker", cfg.Name)
	}
	mgr, err := core.NewManager(repo, cfg.Core)
	if err != nil {
		return nil, fmt.Errorf("cluster: site %q: %w", cfg.Name, err)
	}
	s := &Site{Name: cfg.Name, Manager: mgr}
	for i := 0; i < cfg.Workers; i++ {
		s.Workers = append(s.Workers, NewWorker(i, cfg.WorkerCapacity))
	}
	return s, nil
}

// SiteResult describes one job execution at a site.
type SiteResult struct {
	Site        string
	Worker      int
	Request     core.Result
	Transferred int64 // bytes shipped head node -> worker for this job
}

// Submit prepares an image for the job and runs it on the next worker
// whose circuit admits it (see SetHealthPolicy; without a policy the
// rotation is plain round-robin).
func (s *Site) Submit(job spec.Spec) (SiteResult, error) {
	return s.SubmitTrace("", job)
}

// SubmitTrace is Submit continuing a propagated trace: wire is the
// X-Landlord-Trace header value from the upstream hop ("" or malformed
// starts a fresh trace). The job's trace covers the core request
// phases plus a cluster_dispatch span for the head-to-worker image
// shipment — the per-hop wire format ROADMAP item 2 (networked
// cluster dispatch) will carry over HTTP. With no span tracer
// installed, tracing is skipped entirely.
func (s *Site) SubmitTrace(wire string, job spec.Spec) (SiteResult, error) {
	var at *telemetry.ActiveTrace
	if s.spans != nil {
		id, parent, ok := telemetry.ParseTraceHeader(wire)
		if !ok {
			id, parent = 0, 0
		}
		at = s.spans.Start(id, parent)
	}
	res, err := s.Manager.RequestTraced(job, at)
	if err != nil {
		at.Finish("error", err.Error(), 0)
		return SiteResult{}, err
	}
	ds := at.Begin(telemetry.StageClusterDispatch, at.Root())
	w := s.pickWorker()
	s.jobs++
	transferred := w.Run(res.ImageID, res.ImageVersion, res.ImageSize)
	at.AttrInt(ds, "worker", int64(w.ID))
	at.EndInt(ds, "transferred_bytes", transferred)
	at.Finish(res.Op.String(), "", res.Seq)
	return SiteResult{
		Site:        s.Name,
		Worker:      w.ID,
		Request:     res,
		Transferred: transferred,
	}, nil
}

// Jobs returns the number of jobs the site has executed.
func (s *Site) Jobs() int64 { return s.jobs }

// WorkerTransferredBytes sums image bytes shipped to this site's
// workers.
func (s *Site) WorkerTransferredBytes() int64 {
	var total int64
	for _, w := range s.Workers {
		total += w.stats.TransferredBytes
	}
	return total
}

// WorkerLocalHitRate is the fraction of jobs that reused a local image
// copy across the site's workers.
func (s *Site) WorkerLocalHitRate() float64 {
	var jobs, hits int64
	for _, w := range s.Workers {
		jobs += w.stats.Jobs
		hits += w.stats.LocalHits
	}
	if jobs == 0 {
		return 0
	}
	return float64(hits) / float64(jobs)
}
