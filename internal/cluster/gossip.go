package cluster

import "sort"

// Delta-sync gossip encoding.
//
// The in-process DeltaSite ships image *contents* as exact package-set
// differences. The fleet control plane needs the same idea one level
// up: each agent's image *directory* — which (image, version) pairs it
// holds — must reach the master without retransmitting the whole table
// on every heartbeat. Directory/Follower are the two ends of that
// stream: a revisioned directory on the agent emits DirDelta frames
// relative to the last revision the master acknowledged; the master's
// follower applies them, detecting duplicated, reordered, and lost
// frames. The encoding is plain JSON-tagged structs, so it travels in
// the heartbeat body unchanged.
//
// The protocol is pull-ack, not reliable-stream: every frame carries
// the revision interval (From, To] it covers. A frame whose To is not
// ahead of the follower is a duplicate or a reordering and is dropped;
// a frame whose From is ahead of the follower means frames were lost
// and the follower asks for a full resync. Convergence therefore
// survives a lossy, reordering transport — the property the
// out-of-order gossip test pins down.

// DirEntry is one image copy in a node's image directory.
type DirEntry struct {
	ID      uint64 `json:"id"`
	Version uint64 `json:"version"`
	Size    int64  `json:"size"`
	// Packages is the image's sorted package-key set, letting the
	// master route a request toward a node already holding a superset
	// without a round trip.
	Packages []string `json:"packages,omitempty"`
}

// Equal reports whether two entries describe the same image copy,
// including the package set.
func (e DirEntry) Equal(o DirEntry) bool {
	if e.ID != o.ID || e.Version != o.Version || e.Size != o.Size || len(e.Packages) != len(o.Packages) {
		return false
	}
	for i := range e.Packages {
		if e.Packages[i] != o.Packages[i] {
			return false
		}
	}
	return true
}

// DirDelta is one gossip frame: the directory changes that move a
// follower from revision From to revision To. A Full frame carries the
// whole directory (Upserts only) and applies to any follower behind To
// — it is the resync path after loss or leader reset.
type DirDelta struct {
	From    uint64     `json:"from"`
	To      uint64     `json:"to"`
	Full    bool       `json:"full,omitempty"`
	Upserts []DirEntry `json:"upserts,omitempty"`
	Removes []uint64   `json:"removes,omitempty"`
}

// Empty reports whether the frame carries no change.
func (d DirDelta) Empty() bool {
	return !d.Full && len(d.Upserts) == 0 && len(d.Removes) == 0
}

// dirChange is one journaled mutation on the leader side.
type dirChange struct {
	rev    uint64
	entry  DirEntry
	remove bool
}

// Directory is the leader side of the gossip stream: a revisioned
// image directory with a bounded change journal. Every effective Put
// or Remove bumps the revision; DeltaSince replays the journal into a
// minimal coalesced frame, falling back to a Full frame when the
// requested revision has aged out of the journal.
//
// Directory is not goroutine-safe; the fleet agent drives it from its
// single heartbeat loop.
type Directory struct {
	rev        uint64
	entries    map[uint64]DirEntry
	journal    []dirChange
	journalCap int
}

// DefaultDirJournal is the default journal bound: enough to absorb
// many heartbeats' worth of churn before a resync is forced.
const DefaultDirJournal = 1024

// NewDirectory creates an empty directory whose journal keeps up to
// journalCap changes (<= 0 takes DefaultDirJournal).
func NewDirectory(journalCap int) *Directory {
	if journalCap <= 0 {
		journalCap = DefaultDirJournal
	}
	return &Directory{entries: make(map[uint64]DirEntry), journalCap: journalCap}
}

// Rev returns the current revision (0 = empty, never mutated).
func (d *Directory) Rev() uint64 { return d.rev }

// Len returns the number of directory entries.
func (d *Directory) Len() int { return len(d.entries) }

// Put records that the node holds e, bumping the revision only when
// the entry actually changed — heartbeats that rebuild the directory
// from the live cache every tick must not inflate revisions.
func (d *Directory) Put(e DirEntry) {
	if cur, ok := d.entries[e.ID]; ok && cur.Equal(e) {
		return
	}
	d.entries[e.ID] = e
	d.log(dirChange{entry: e})
}

// Remove records that the node dropped image id (no-op when absent).
func (d *Directory) Remove(id uint64) {
	if _, ok := d.entries[id]; !ok {
		return
	}
	delete(d.entries, id)
	d.log(dirChange{entry: DirEntry{ID: id}, remove: true})
}

func (d *Directory) log(c dirChange) {
	d.rev++
	c.rev = d.rev
	d.journal = append(d.journal, c)
	if len(d.journal) > d.journalCap {
		d.journal = d.journal[len(d.journal)-d.journalCap:]
	}
}

// Full returns a resync frame carrying the whole directory.
func (d *Directory) Full() DirDelta {
	out := DirDelta{To: d.rev, Full: true}
	out.Upserts = d.sortedEntries()
	return out
}

// DeltaSince returns the frame that moves a follower at revision rev
// to the directory's current state: an incremental frame when the
// journal still covers (rev, d.rev], a Full frame otherwise. A
// follower already current gets an empty frame.
func (d *Directory) DeltaSince(rev uint64) DirDelta {
	if rev == d.rev {
		return DirDelta{From: rev, To: rev}
	}
	if rev > d.rev || !d.journalCovers(rev) {
		return d.Full()
	}
	// Coalesce: the last journaled change per image wins.
	final := make(map[uint64]dirChange)
	for _, c := range d.journal {
		if c.rev > rev {
			final[c.entry.ID] = c
		}
	}
	out := DirDelta{From: rev, To: d.rev}
	ids := make([]uint64, 0, len(final))
	for id := range final {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := final[id]
		if c.remove {
			out.Removes = append(out.Removes, id)
		} else {
			out.Upserts = append(out.Upserts, c.entry)
		}
	}
	return out
}

// journalCovers reports whether every change after rev is still
// journaled.
func (d *Directory) journalCovers(rev uint64) bool {
	if len(d.journal) == 0 {
		return rev == d.rev
	}
	return d.journal[0].rev <= rev+1
}

func (d *Directory) sortedEntries() []DirEntry {
	out := make([]DirEntry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ApplyResult classifies a follower's handling of one frame.
type ApplyResult int

const (
	// DeltaApplied: the frame advanced the follower.
	DeltaApplied ApplyResult = iota
	// DeltaStale: duplicate or reordered-old frame; dropped, follower
	// unchanged. Not an error — lossy transports produce these.
	DeltaStale
	// DeltaGap: frames were lost; the follower needs a Full resync and
	// did not change.
	DeltaGap
)

// String renders the result for diagnostics.
func (r ApplyResult) String() string {
	switch r {
	case DeltaStale:
		return "stale"
	case DeltaGap:
		return "gap"
	default:
		return "applied"
	}
}

// Follower mirrors a Directory from a stream of DirDelta frames that
// may arrive duplicated or out of order. Not goroutine-safe; the
// master applies frames under its membership lock.
type Follower struct {
	rev     uint64
	entries map[uint64]DirEntry
}

// NewFollower creates an empty follower at revision 0.
func NewFollower() *Follower {
	return &Follower{entries: make(map[uint64]DirEntry)}
}

// Rev returns the last applied revision — the ack the leader's next
// DeltaSince should use.
func (f *Follower) Rev() uint64 { return f.rev }

// Len returns the number of mirrored entries.
func (f *Follower) Len() int { return len(f.entries) }

// Entries returns the mirrored directory sorted by image ID.
func (f *Follower) Entries() []DirEntry {
	out := make([]DirEntry, 0, len(f.entries))
	for _, e := range f.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Reset drops all mirrored state (the leader restarted under a new
// generation; its revisions no longer relate to ours).
func (f *Follower) Reset() {
	f.rev = 0
	f.entries = make(map[uint64]DirEntry)
}

// Apply incorporates one frame. Duplicated and reordered-old frames
// are dropped (DeltaStale); a frame from beyond the follower's
// revision reports DeltaGap so the caller can request a Full resync.
func (f *Follower) Apply(d DirDelta) ApplyResult {
	if d.Full {
		if d.To <= f.rev {
			return DeltaStale
		}
		f.entries = make(map[uint64]DirEntry, len(d.Upserts))
		for _, e := range d.Upserts {
			f.entries[e.ID] = e
		}
		f.rev = d.To
		return DeltaApplied
	}
	if d.To <= f.rev {
		return DeltaStale
	}
	if d.From != f.rev {
		return DeltaGap
	}
	for _, e := range d.Upserts {
		f.entries[e.ID] = e
	}
	for _, id := range d.Removes {
		delete(f.entries, id)
	}
	f.rev = d.To
	return DeltaApplied
}
