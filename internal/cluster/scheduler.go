package cluster

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/spec"
	"repro/internal/telemetry"
)

// Policy selects the site a job is routed to. Implementations must be
// deterministic given their construction parameters so cluster
// simulations are reproducible.
type Policy interface {
	// Pick returns the index of the chosen site in sites.
	Pick(job spec.Spec, sites []*Site) int
	// Name identifies the policy in reports.
	Name() string
}

// RoundRobin rotates submissions across sites, the behaviour of a
// simple multi-site pilot factory.
type RoundRobin struct{ next int }

// Pick returns sites in rotation.
func (p *RoundRobin) Pick(job spec.Spec, sites []*Site) int {
	i := p.next % len(sites)
	p.next++
	return i
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// RandomPolicy routes jobs uniformly at random (seeded), modeling
// opportunistic backfill across a grid.
type RandomPolicy struct{ rng *rand.Rand }

// NewRandomPolicy creates a seeded random policy.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Pick returns a uniformly random site.
func (p *RandomPolicy) Pick(job spec.Spec, sites []*Site) int {
	return p.rng.Intn(len(sites))
}

// Name implements Policy.
func (p *RandomPolicy) Name() string { return "random" }

// Affinity routes a job by the hash of its specification, so repeated
// and related submissions land at the same site and its caches stay
// warm — the "choose their execution environments strategically"
// behaviour of Section II.
type Affinity struct{}

// Pick hashes the specification onto a site.
func (Affinity) Pick(job spec.Spec, sites []*Site) int {
	return int(job.Hash() % uint64(len(sites)))
}

// Name implements Policy.
func (Affinity) Name() string { return "affinity" }

// Cluster is a set of sites fed from one job stream under a policy.
type Cluster struct {
	Sites  []*Site
	policy Policy
}

// New assembles a cluster. At least one site and a policy are required.
func New(sites []*Site, policy Policy) (*Cluster, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("cluster: no sites")
	}
	if policy == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	return &Cluster{Sites: sites, policy: policy}, nil
}

// Submit routes one job to a site and executes it.
func (c *Cluster) Submit(job spec.Spec) (SiteResult, error) {
	return c.SubmitCtx(context.Background(), job)
}

// SubmitCtx is Submit with trace propagation: an ActiveTrace attached
// to ctx (telemetry.ContextWithTrace) is carried to the chosen site in
// the X-Landlord-Trace wire format, so the site's job trace links back
// to the submitter's span — the same hop shape a networked dispatch
// (ROADMAP 2) will use over HTTP.
func (c *Cluster) SubmitCtx(ctx context.Context, job spec.Spec) (SiteResult, error) {
	i := c.policy.Pick(job, c.Sites)
	if i < 0 || i >= len(c.Sites) {
		return SiteResult{}, fmt.Errorf("cluster: policy %q picked invalid site %d", c.policy.Name(), i)
	}
	wire := ""
	if at := telemetry.TraceFromContext(ctx); at != nil {
		wire = telemetry.FormatTraceHeader(at.TraceID(), at.Root())
	}
	return c.Sites[i].SubmitTrace(wire, job)
}

// Report aggregates cluster-wide accounting after a stream has run.
type Report struct {
	Policy string
	Jobs   int64
	// HeadBytesWritten sums image-preparation I/O across all site head
	// nodes.
	HeadBytesWritten int64
	// WorkerTransferredBytes sums head-to-worker image shipping.
	WorkerTransferredBytes int64
	// WorkerLocalHitRate is the job-weighted local reuse rate.
	WorkerLocalHitRate float64
	// ColdMigrations counts jobs rerouted off open-circuit workers
	// (zero without a health policy).
	ColdMigrations int64
	// PerSite holds one row per site.
	PerSite []SiteReport
}

// SiteReport is the per-site slice of a Report.
type SiteReport struct {
	Name               string
	Jobs               int64
	Images             int
	CachedBytes        int64
	CacheEfficiency    float64
	HeadBytesWritten   int64
	WorkerTransferred  int64
	WorkerLocalHitRate float64
	ColdMigrations     int64
	CircuitOpens       int64
}

// RunStream submits every job in the stream and returns the aggregate
// report.
func (c *Cluster) RunStream(stream []spec.Spec) (Report, error) {
	for i, job := range stream {
		if _, err := c.Submit(job); err != nil {
			return Report{}, fmt.Errorf("cluster: job %d: %w", i, err)
		}
	}
	return c.Report(), nil
}

// Report snapshots the cluster's aggregate accounting.
func (c *Cluster) Report() Report {
	rep := Report{Policy: c.policy.Name()}
	var jobs, hits int64
	for _, s := range c.Sites {
		st := s.Manager.Stats()
		sr := SiteReport{
			Name:               s.Name,
			Jobs:               s.Jobs(),
			Images:             s.Manager.Len(),
			CachedBytes:        s.Manager.TotalData(),
			CacheEfficiency:    s.Manager.CacheEfficiency(),
			HeadBytesWritten:   st.BytesWritten,
			WorkerTransferred:  s.WorkerTransferredBytes(),
			WorkerLocalHitRate: s.WorkerLocalHitRate(),
			ColdMigrations:     s.coldMigrations,
			CircuitOpens:       s.circuitOpens,
		}
		rep.PerSite = append(rep.PerSite, sr)
		rep.Jobs += sr.Jobs
		rep.HeadBytesWritten += sr.HeadBytesWritten
		rep.WorkerTransferredBytes += sr.WorkerTransferred
		rep.ColdMigrations += sr.ColdMigrations
		for _, w := range s.Workers {
			jobs += w.stats.Jobs
			hits += w.stats.LocalHits
		}
	}
	if jobs > 0 {
		rep.WorkerLocalHitRate = float64(hits) / float64(jobs)
	}
	return rep
}
