package cluster

import (
	"fmt"

	"repro/internal/resilience"
)

// HealthPolicy configures per-worker circuit breaking at a site. The
// cluster model has no wall clock — simulations must be reproducible —
// so the cool-down is measured in site jobs: an open worker rejoins
// the rotation (half-open, as a probe) after the site has dispatched
// CooldownJobs jobs elsewhere.
type HealthPolicy struct {
	// Failures is the number of consecutive job failures that opens a
	// worker's circuit (default 3).
	Failures int
	// CooldownJobs is how many site jobs the circuit stays open before
	// the worker is probed again (default 10).
	CooldownJobs int64
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.Failures <= 0 {
		p.Failures = 3
	}
	if p.CooldownJobs <= 0 {
		p.CooldownJobs = 10
	}
	return p
}

// workerHealth is one worker's circuit, driven by reported job
// outcomes and the site's job counter.
type workerHealth struct {
	state    resilience.BreakerState
	fails    int   // consecutive failures while closed
	openedAt int64 // site job count when the circuit opened
}

// SetHealthPolicy enables worker circuit breaking: job outcomes
// reported via ReportJobSuccess/ReportJobFailure open and close
// per-worker circuits, and Submit cold-migrates jobs off open-circuit
// workers. Call before submitting; the zero-value site runs without
// health tracking (every worker always eligible).
func (s *Site) SetHealthPolicy(p HealthPolicy) {
	s.healthPolicy = p.withDefaults()
	s.health = make([]workerHealth, len(s.Workers))
}

// ReportJobFailure records that the job dispatched to worker id failed
// at the worker (its daemon unreachable, image corrupt on arrival —
// any outcome the batch system attributes to the node). Enough
// consecutive failures open the worker's circuit; a failure during a
// half-open probe re-opens it immediately.
func (s *Site) ReportJobFailure(id int) error {
	h, err := s.workerHealth(id)
	if err != nil || h == nil {
		return err
	}
	switch h.state {
	case resilience.BreakerClosed:
		h.fails++
		if h.fails >= s.healthPolicy.Failures {
			s.openCircuit(h)
		}
	case resilience.BreakerHalfOpen:
		s.openCircuit(h)
	}
	return nil
}

// ReportJobSuccess records a successful job on worker id: a closed
// circuit forgets accumulated failures, a half-open probe success
// closes the circuit.
func (s *Site) ReportJobSuccess(id int) error {
	h, err := s.workerHealth(id)
	if err != nil || h == nil {
		return err
	}
	switch h.state {
	case resilience.BreakerClosed:
		h.fails = 0
	case resilience.BreakerHalfOpen:
		h.state = resilience.BreakerClosed
		h.fails = 0
	}
	return nil
}

// WorkerCircuit returns worker id's circuit state (always closed when
// no health policy is installed).
func (s *Site) WorkerCircuit(id int) (resilience.BreakerState, error) {
	h, err := s.workerHealth(id)
	if err != nil || h == nil {
		return resilience.BreakerClosed, err
	}
	s.maybeHalfOpen(h)
	return h.state, nil
}

// ColdMigrations counts jobs rerouted off an open-circuit worker: the
// job runs, but on a node that likely has a cold image cache, so the
// transfer cost resurfaces. This is the price of routing around
// failures, surfaced so operators can see circuit churn in transfer
// accounting.
func (s *Site) ColdMigrations() int64 { return s.coldMigrations }

func (s *Site) workerHealth(id int) (*workerHealth, error) {
	if s.health == nil {
		return nil, nil
	}
	if id < 0 || id >= len(s.health) {
		return nil, fmt.Errorf("cluster: site %q has no worker %d", s.Name, id)
	}
	return &s.health[id], nil
}

func (s *Site) openCircuit(h *workerHealth) {
	h.state = resilience.BreakerOpen
	h.fails = 0
	h.openedAt = s.jobs
	s.circuitOpens++
}

// maybeHalfOpen promotes an open circuit whose cool-down has elapsed:
// the worker becomes eligible again, and its next job is the probe.
func (s *Site) maybeHalfOpen(h *workerHealth) {
	if h.state == resilience.BreakerOpen && s.jobs-h.openedAt >= s.healthPolicy.CooldownJobs {
		h.state = resilience.BreakerHalfOpen
	}
}

// pickWorker advances the round-robin cursor to the next worker whose
// circuit admits a job. Skipping an open-circuit worker is a cold
// migration. When every circuit is open, the cursor's worker is used
// anyway: a site cannot refuse its job stream, it can only place
// badly — and the forced dispatch doubles as a probe.
func (s *Site) pickWorker() *Worker {
	n := len(s.Workers)
	idx := s.next
	s.next = (s.next + 1) % n
	if s.health == nil {
		return s.Workers[idx]
	}
	migrated := false
	for off := 0; off < n; off++ {
		i := (idx + off) % n
		h := &s.health[i]
		s.maybeHalfOpen(h)
		if h.state != resilience.BreakerOpen {
			if migrated {
				s.coldMigrations++
				// Advance past the worker we settled on, not the one we
				// started from, so the rotation does not immediately
				// re-land on the open circuit.
				s.next = (i + 1) % n
			}
			return s.Workers[i]
		}
		migrated = true
	}
	// All circuits open: force the original placement as a probe.
	s.health[idx].state = resilience.BreakerHalfOpen
	return s.Workers[idx]
}
