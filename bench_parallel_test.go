// Parallel cache benchmarks: the concurrent request pipeline
// (core.ConcurrentManager) against the single-threaded Manager on the
// two ends of the operational spectrum. "hit-heavy" repeats cached
// specs — every request rides the shared read lock, so throughput
// should scale with cores. "merge-heavy" streams fresh specs — almost
// every request needs the exclusive write lock, so parallel throughput
// is bounded by the serial decision procedure and measures pipeline
// overhead instead. EXPERIMENTS.md records the measured table.
package repro

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/workload"
)

const parallelWarmImages = 50

// The serial and parallel variants share one configuration, so the
// comparison isolates the locking strategy.

func BenchmarkManagerSerial(b *testing.B) {
	repo := benchFullRepo(b)
	cfg := core.Config{Alpha: 0.75, Capacity: repo.TotalSize() * 2, MinHash: core.DefaultMinHash()}

	b.Run("hit-heavy", func(b *testing.B) {
		mgr := core.MustNewManager(repo, cfg)
		warm := warmSpecs(b, mgr.Request, 11)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mgr.Request(warm[i%len(warm)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("merge-heavy", func(b *testing.B) {
		mgr := core.MustNewManager(repo, cfg)
		gen := workload.NewDepClosure(repo, 13)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mgr.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkManagerParallel is the issue's acceptance benchmark: at
// GOMAXPROCS >= 4 the hit-heavy parallel throughput must be at least
// 2x the serial baseline above.
func BenchmarkManagerParallel(b *testing.B) {
	repo := benchFullRepo(b)
	cfg := core.Config{Alpha: 0.75, Capacity: repo.TotalSize() * 2, MinHash: core.DefaultMinHash()}

	b.Run("hit-heavy", func(b *testing.B) {
		cm, err := core.NewConcurrent(repo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		warm := warmSpecs(b, cm.Request, 11)
		var worker atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Distinct stride per goroutine: workers collide on hot
			// images without marching in lockstep.
			off := int(worker.Add(1))
			i := 0
			for pb.Next() {
				i++
				if _, err := cm.Request(warm[(off*31+i)%len(warm)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	b.Run("merge-heavy", func(b *testing.B) {
		cm, err := core.NewConcurrent(repo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var seed atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			gen := workload.NewDepClosure(repo, 1000+seed.Add(1))
			for pb.Next() {
				if _, err := cm.Request(gen.Next()); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkManagerSharded is PR 8's acceptance benchmark: the sharded
// cache against the single write lock on the merge-heavy workload that
// bottlenecks it. At GOMAXPROCS=8, shards=16 must deliver at least 3x
// the shards=1 throughput (EXPERIMENTS.md records the measured table).
func BenchmarkManagerSharded(b *testing.B) {
	repo := benchFullRepo(b)
	base := core.Config{Alpha: 0.75, Capacity: repo.TotalSize() * 2, MinHash: core.DefaultMinHash()}

	for _, shards := range []int{1, 4, 16} {
		cfg := base
		cfg.Shards = shards

		b.Run(fmt.Sprintf("hit-heavy/shards=%d", shards), func(b *testing.B) {
			sm, err := core.NewSharded(repo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			warm := warmSpecs(b, sm.Request, 11)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				off := int(worker.Add(1))
				i := 0
				for pb.Next() {
					i++
					if _, err := sm.Request(warm[(off*31+i)%len(warm)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		})

		b.Run(fmt.Sprintf("merge-heavy/shards=%d", shards), func(b *testing.B) {
			sm, err := core.NewSharded(repo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var seed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				gen := workload.NewDepClosure(repo, 1000+seed.Add(1))
				for pb.Next() {
					if _, err := sm.Request(gen.Next()); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// warmSpecs populates the cache with parallelWarmImages images via
// request (inserts) and returns those specs: re-requesting any of them
// is a guaranteed hit.
func warmSpecs(b *testing.B, request func(spec.Spec) (core.Result, error), seed int64) []spec.Spec {
	b.Helper()
	gen := workload.NewDepClosure(benchFullRepo(b), seed)
	warm := make([]spec.Spec, parallelWarmImages)
	for i := range warm {
		warm[i] = gen.Next()
		if _, err := request(warm[i]); err != nil {
			b.Fatal(err)
		}
	}
	return warm
}
