// Multisite: the distributed deployment the paper targets — a job
// stream spread over several computing sites, each running its own
// LANDLORD head-node cache in front of a pool of worker nodes with
// local image scratch. Compares scheduling policies by worker transfer
// volume and local reuse.
//
//	go run ./examples/multisite
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo, err := pkggraph.Generate(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}

	stream, err := workload.Stream(workload.NewDepClosure(repo, 1), 60, 5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatching %d jobs (60 unique x5) over 3 sites x 4 workers\n\n", len(stream))

	for _, policy := range []cluster.Policy{
		&cluster.RoundRobin{},
		cluster.NewRandomPolicy(11),
		cluster.Affinity{},
	} {
		var sites []*cluster.Site
		for i := 0; i < 3; i++ {
			site, err := cluster.NewSite(repo, cluster.SiteConfig{
				Name:    fmt.Sprintf("site-%c", 'a'+i),
				Workers: 4,
				Core: core.Config{
					Alpha:    0.8,
					Capacity: repo.TotalSize(),
					MinHash:  core.DefaultMinHash(),
				},
				WorkerCapacity: repo.TotalSize() / 2,
			})
			if err != nil {
				log.Fatal(err)
			}
			sites = append(sites, site)
		}
		c, err := cluster.New(sites, policy)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := c.RunStream(stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s head writes %-10s worker transfers %-10s local reuse %5.1f%%\n",
			rep.Policy,
			stats.FormatBytes(rep.HeadBytesWritten),
			stats.FormatBytes(rep.WorkerTransferredBytes),
			rep.WorkerLocalHitRate*100)
		for _, sr := range rep.PerSite {
			fmt.Printf("  %-8s %4d jobs, %2d images, cache efficiency %5.1f%%\n",
				sr.Name, sr.Jobs, sr.Images, sr.CacheEfficiency*100)
		}
	}
	fmt.Println("\naffinity routing sends repeats of a job to the same site: fewer")
	fmt.Println("image rebuilds at the head nodes and warmer worker scratch caches")
}
