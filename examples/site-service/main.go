// Site service: run LANDLORD as an HTTP service (the batch-system
// plugin deployment) and drive it through the Go client — in one
// process, over a real TCP loopback listener.
//
//	go run ./examples/site-service
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo, err := pkggraph.Generate(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("landlordd serving on %s\n\n", base)

	client := server.NewClient(base, nil)
	if err := client.Healthz(); err != nil {
		log.Fatal(err)
	}

	// Submit three jobs as a batch system would: package keys in,
	// image decisions out.
	jobs := [][]string{
		{pick(repo, "app-0001", -1), pick(repo, "library-0003", -1)},
		{pick(repo, "app-0001", -1), pick(repo, "library-0005", -1)},
		{pick(repo, "app-0001", -1), pick(repo, "library-0003", -1)},
	}
	for i, keys := range jobs {
		res, err := client.Request(keys, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d: %-6s image %d v%d (%s, %d packages)\n",
			i+1, res.Op, res.ImageID, res.ImageVersion,
			stats.FormatBytes(res.ImageSize), res.Packages)
	}

	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nservice stats: %d requests (%d hits, %d merges, %d inserts), %d images, cache efficiency %.0f%%\n",
		st.Requests, st.Hits, st.Merges, st.Inserts, st.Images, st.CacheEfficiency*100)

	imgs, err := client.Images()
	if err != nil {
		log.Fatal(err)
	}
	for _, img := range imgs {
		fmt.Printf("  image %d v%d: %d packages, %s, %d merges\n",
			img.ID, img.Version, img.Packages, stats.FormatBytes(img.Size), img.Merges)
	}
}

// pick returns the key of a family's newest version (version < 0).
func pick(repo *pkggraph.Repo, family string, version int) string {
	versions := repo.FamilyVersions(family)
	if len(versions) == 0 {
		log.Fatalf("no such family: %s", family)
	}
	if version < 0 || version >= len(versions) {
		version = len(versions) - 1
	}
	return repo.Package(versions[version]).Key()
}
