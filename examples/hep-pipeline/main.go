// HEP pipeline: run the paper's seven LHC benchmark applications
// (Figure 2) through LANDLORD as a realistic multi-experiment job
// stream, showing how phases of the same experiment end up sharing
// merged images while unrelated experiments stay apart, and measuring
// Shrinkwrap preparation costs.
//
//	go run ./examples/hep-pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cvmfs"
	"repro/internal/hep"
	"repro/internal/pkggraph"
	"repro/internal/shrinkwrap"
	"repro/internal/stats"
)

func main() {
	// A mid-sized repository keeps this example fast while preserving
	// the hierarchical structure the apps' specs are derived from.
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 4
	cfg.FrameworkFamilies = 12
	cfg.LibraryFamilies = 60
	cfg.ApplicationFamilies = 120
	repo, err := pkggraph.Generate(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}

	mgr, err := core.NewManager(repo, core.Config{Alpha: 0.5, MinHash: core.DefaultMinHash()})
	if err != nil {
		log.Fatal(err)
	}
	builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())

	fmt.Println("submitting the LHC benchmark pipeline through LANDLORD (alpha=0.5):")
	fmt.Println()

	// Two production rounds: the second round re-submits every
	// pipeline, as WLCG campaigns do.
	for round := 1; round <= 2; round++ {
		fmt.Printf("--- production round %d ---\n", round)
		for _, app := range hep.Benchmarks {
			s := app.Spec(repo)
			res, err := mgr.Request(s)
			if err != nil {
				log.Fatal(err)
			}
			line := fmt.Sprintf("%-14s %-6s image %d (%s)",
				app.Name, res.Op, res.ImageID, stats.FormatBytes(res.ImageSize))
			if res.Op != core.OpHit {
				// Only materialize when the cache changed.
				rep, err := builder.Build(s)
				if err != nil {
					log.Fatal(err)
				}
				line += fmt.Sprintf("  shrinkwrap: %d files, %s fetched, ~%.0fs",
					rep.Image.Files, stats.FormatBytes(rep.FetchedBytes), rep.PrepTime.Seconds())
			}
			fmt.Println(line)
		}
	}

	st := mgr.Stats()
	fmt.Printf("\n%d requests: %d hits, %d merges, %d inserts\n",
		st.Requests, st.Hits, st.Merges, st.Inserts)
	fmt.Printf("cache: %d images for 7 applications x2 rounds, %s stored (%s unique)\n",
		mgr.Len(), stats.FormatBytes(mgr.TotalData()), stats.FormatBytes(mgr.UniqueData()))
	fmt.Printf("a naive per-spec store would hold 7 images totalling the sum of all pipelines\n")
}
