// Quickstart: build a software repository, create a LANDLORD cache
// manager, and submit a handful of overlapping jobs to see Algorithm 1
// reuse, merge, and insert container images.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	// A scaled-down SFT-like repository: same hierarchical structure as
	// the paper's 9,660-package repo, ~500 packages for a fast demo.
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo, err := pkggraph.Generate(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository: %d packages, %s\n\n", repo.Len(), stats.FormatBytes(repo.TotalSize()))

	// A LANDLORD manager with the paper's recommended starting point:
	// a moderate alpha of 0.8 and a cache capped at the repo size.
	mgr, err := core.NewManager(repo, core.Config{
		Alpha:    0.8,
		Capacity: repo.TotalSize(),
		MinHash:  core.DefaultMinHash(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three jobs with overlapping needs: two variations of an analysis
	// plus an exact re-run. Specifications are dependency-closed, as
	// the paper's image construction requires.
	jobs := []struct {
		name  string
		picks []pkggraph.PkgID
	}{
		{"analysis-v1", []pkggraph.PkgID{400, 401, 402}},
		{"analysis-v2", []pkggraph.PkgID{400, 401, 403}}, // one package differs
		{"analysis-v1 (re-run)", []pkggraph.PkgID{400, 401, 402}},
		{"unrelated", []pkggraph.PkgID{200}},
	}
	for _, job := range jobs {
		s := spec.WithClosure(repo, job.picks)
		res, err := mgr.Request(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s -> %-6s image %d (%s, container efficiency %.0f%%)\n",
			job.name, res.Op, res.ImageID,
			stats.FormatBytes(res.ImageSize), res.ContainerEfficiency()*100)
	}

	st := mgr.Stats()
	fmt.Printf("\ncache: %d images, %s stored, %s unique (cache efficiency %.0f%%)\n",
		mgr.Len(), stats.FormatBytes(mgr.TotalData()),
		stats.FormatBytes(mgr.UniqueData()), mgr.CacheEfficiency()*100)
	fmt.Printf("ops: %d hits, %d merges, %d inserts; %s written vs %s requested\n",
		st.Hits, st.Merges, st.Inserts,
		stats.FormatBytes(st.BytesWritten), stats.FormatBytes(st.RequestedBytes))
}
