// Specscan: derive a container specification from application sources
// — the paper's automatic specification generation — then submit the
// resulting job through LANDLORD. The example writes a small analysis
// project (Python driver plus a batch script) to a temp directory,
// scans it, resolves the discovered requirements against the
// repository through a site mapping, and requests a container.
//
//	go run ./examples/specscan
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/specscan"
	"repro/internal/stats"
)

const pythonDriver = `#!/usr/bin/env python
import numpy
import uproot
from analysis_helpers import selection

def main():
    selection.run()
`

const batchScript = `#!/bin/bash
module load gcc/8.2.0
module load root/6.18
python driver.py
`

func main() {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo, err := pkggraph.Generate(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Write the example "analysis project".
	dir, err := os.MkdirTemp("", "landlord-specscan")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	must(os.WriteFile(filepath.Join(dir, "driver.py"), []byte(pythonDriver), 0o644))
	must(os.WriteFile(filepath.Join(dir, "submit.sh"), []byte(batchScript), 0o644))

	tokens, err := specscan.ScanDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered requirements: %v\n", tokens)

	// A site mapping translates requirement tokens to repository
	// packages. Tokens without a mapping (the project's own helper
	// module) are reported as unresolved.
	mapping := specscan.Mapping{
		"numpy":     key(repo, "library-0004"),
		"uproot":    key(repo, "library-0007"),
		"python":    key(repo, "framework-002"),
		"gcc/8.2.0": key(repo, "framework-000"),
		"root/6.18": key(repo, "framework-001"),
	}
	s, missing, err := specscan.Resolve(tokens, mapping, repo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unresolved (project-local) tokens: %v\n", missing)
	fmt.Printf("specification: %d packages, %s after dependency closure\n",
		s.Len(), stats.FormatBytes(s.Size(repo)))

	mgr, err := core.NewManager(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mgr.Request(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("landlord: %s -> image %d (%s)\n",
		res.Op, res.ImageID, stats.FormatBytes(res.ImageSize))
}

// key returns the newest version key of a family.
func key(repo *pkggraph.Repo, family string) string {
	versions := repo.FamilyVersions(family)
	if len(versions) == 0 {
		log.Fatalf("no such family: %s", family)
	}
	return repo.Package(versions[len(versions)-1]).Key()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
