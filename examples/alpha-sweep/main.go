// Alpha sweep: explore the cache/container efficiency trade-off and
// find the operational zone, the paper's headline tuning result
// (Figure 8): extreme alpha values behave pathologically, while a wide
// middle range balances storage utilization against merge I/O.
//
//	go run ./examples/alpha-sweep
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/pkggraph"
	"repro/internal/sim"
)

func main() {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo, err := pkggraph.Generate(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}

	params := sim.Params{
		Repo:       repo,
		CacheBytes: repo.TotalSize() * 14 / 10, // the paper's ~1.4x cache:repo ratio
		UniqueJobs: 120,
		Repeats:    4,
		MaxInitial: 8,
		Seed:       1,
		UseMinHash: true,
	}
	points, err := sim.SweepAlpha(params, sim.DefaultAlphas(), 5, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("alpha  cache-eff  container-eff  write-amp   ops (hit/merge/insert)")
	for _, p := range points {
		fmt.Printf("%.2f   %5.1f%%     %5.1f%%        %.2fx       %.0f/%.0f/%.0f\n",
			p.Alpha, p.CacheEfficiency*100, p.ContainerEfficiency*100,
			p.WriteAmplification(), p.Hits, p.Merges, p.Inserts)
	}

	lo, hi, ok := sim.OperationalZone(points, 0.30, 2.0)
	if ok {
		fmt.Printf("\noperational zone: alpha in [%.2f, %.2f]\n", lo, hi)
		fmt.Println("(the paper recommends starting at a moderate alpha of 0.8)")
	} else {
		fmt.Println("\nno alpha satisfies both limits in this configuration")
	}
}
