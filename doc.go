// Package repro is a from-scratch Go reproduction of
//
//	Tim Shaffer, Nicholas Hazekamp, Jakob Blomer, Douglas Thain.
//	"Solving the Container Explosion Problem for Distributed High
//	Throughput Computing." IEEE IPDPS 2020.
//
// The system — LANDLORD — manages a bounded cache of container images
// for high-throughput jobs by comparing and merging container
// *specifications* (sets of packages) instead of built images, using
// the Jaccard distance with a tunable merge threshold α.
//
// The implementation lives under internal/: the cache manager
// (internal/core, Algorithm 1), the package-repository model and
// SFT-calibrated synthetic generator (internal/pkggraph), the
// specification algebra (internal/spec), Jaccard + MinHash
// (internal/similarity), a simulated CVMFS content-addressed store
// (internal/cvmfs) with the Shrinkwrap image builder
// (internal/shrinkwrap), Section III's baseline stores
// (internal/image), workload generators and the trace-driven
// simulation harness (internal/workload, internal/trace,
// internal/sim), the Figure 2 LHC benchmark models (internal/hep), and
// specification scanners (internal/specscan).
//
// Binaries: cmd/landlord (job wrapper), cmd/landlord-sim (regenerates
// every paper table and figure), cmd/specgen (spec generation).
// Runnable examples are under examples/. The benchmarks in
// bench_test.go exercise one experiment per paper artifact plus the
// ablations listed in DESIGN.md.
package repro
