// Benchmarks for the deployment layers (distributed cluster, HTTP site
// service, batch integration) and the remaining DESIGN.md ablations:
// A5 image splitting and the LSH candidate index.
package repro

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cvmfs"
	"repro/internal/dedup"
	"repro/internal/server"
	"repro/internal/similarity"
	"repro/internal/spec"
	"repro/internal/workload"
)

// BenchmarkClusterStream measures the multi-site deployment: a stream
// dispatched across 3 sites x 4 workers under affinity routing.
func BenchmarkClusterStream(b *testing.B) {
	repo := benchFullRepo(b)
	stream, err := workload.Stream(workload.NewDepClosure(repo, 1), 60, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sites []*cluster.Site
		for s := 0; s < 3; s++ {
			site, err := cluster.NewSite(repo, cluster.SiteConfig{
				Name:    fmt.Sprintf("s%d", s),
				Workers: 4,
				Core: core.Config{
					Alpha:    0.8,
					Capacity: repo.TotalSize(),
					MinHash:  core.DefaultMinHash(),
				},
				WorkerCapacity: repo.TotalSize() / 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			sites = append(sites, site)
		}
		c, err := cluster.New(sites, cluster.Affinity{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunStream(stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerRequest measures one job submission through the HTTP
// site service (client -> loopback HTTP -> manager).
func BenchmarkServerRequest(b *testing.B) {
	repo := benchFullRepo(b)
	srv, err := server.New(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := server.NewClient(ts.URL, ts.Client())

	gen := workload.NewDepClosure(repo, 5)
	gen.MaxInitial = 5
	keys := make([][]string, 32)
	for i := range keys {
		s := gen.Next()
		ids := s.IDs()
		row := make([]string, 0, len(ids))
		for _, id := range ids {
			row = append(row, repo.Package(id).Key())
		}
		keys[i] = row
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Request(keys[i%len(keys)], false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchDrain measures the batch-system wrapper: queue 50 jobs
// and drain them with per-job logs.
func BenchmarkBatchDrain(b *testing.B) {
	repo := benchMidRepo(b)
	gen := workload.NewDepClosure(repo, 7)
	gen.MaxInitial = 5
	specs := make([]batch.Job, 50)
	for i := range specs {
		specs[i] = batch.Job{Name: fmt.Sprintf("job-%03d", i), Spec: gen.Next(), RunTime: time.Minute}
	}
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr := core.MustNewManager(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
		sys, err := batch.NewSystem(repo, mgr, dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range specs {
			sys.Submit(j)
		}
		if _, err := sys.Drain(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSplit compares a merge-heavy run with and without
// periodic Prune passes (ablation A5): splitting pays I/O to shed cold
// bloat from hot images.
func BenchmarkAblationSplit(b *testing.B) {
	repo := benchFullRepo(b)
	stream, err := workload.Stream(workload.NewDepClosure(repo, 3), 100, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		prune bool
	}{{"no-split", false}, {"split-every-50", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mgr := core.MustNewManager(repo, core.Config{
					Alpha:    0.9,
					Capacity: repo.TotalSize() * 14 / 10,
					MinHash:  core.DefaultMinHash(),
				})
				for j, s := range stream {
					if _, err := mgr.Request(s); err != nil {
						b.Fatal(err)
					}
					if mode.prune && (j+1)%50 == 0 {
						if _, err := mgr.Prune(0.5, 3); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkLSHIndex measures candidate retrieval from a 10,000-set
// index versus the linear signature scan it replaces.
func BenchmarkLSHIndex(b *testing.B) {
	repo := benchFullRepo(b)
	const k = 64
	h := similarity.MustNewHasher(k, 1)
	gen := workload.NewDepClosure(repo, 9)
	gen.MaxInitial = 20

	const n = 10000
	sigs := make([]similarity.Signature, n)
	idx, err := similarity.NewLSHIndex(k, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sigs[i] = h.Sign(gen.Next())
		if err := idx.Insert(uint64(i), sigs[i]); err != nil {
			b.Fatal(err)
		}
	}
	query := h.Sign(gen.Next())

	b.Run("lsh-candidates", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.Candidates(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, sig := range sigs {
				similarity.EstimateDistance(query, sig)
			}
		}
	})
}

// BenchmarkCampaign measures the multi-experiment campaign scenario
// (experiment D6): generation plus a 200-job run.
func BenchmarkCampaign(b *testing.B) {
	repo := benchFullRepo(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen, err := campaign.NewGenerator(campaign.Config{
			Repo:           repo,
			Experiments:    campaign.DefaultExperiments(),
			Campaigns:      5,
			MutateFraction: 0.3,
			Seed:           int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		mgr := core.MustNewManager(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
		if _, err := campaign.Run(mgr, gen.Jobs(200)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDedupAnalysis measures the Section III duplication scan
// (experiment D3) over 20 images at file granularity.
func BenchmarkDedupAnalysis(b *testing.B) {
	repo := benchMidRepo(b)
	store := cvmfs.NewStore(repo)
	gen := workload.NewDepClosure(repo, 5)
	gen.MaxInitial = 5
	images := make([]spec.Spec, 20)
	for i := range images {
		images[i] = gen.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dedup.Analyze(store, images, dedup.ByFile, 0); err != nil {
			b.Fatal(err)
		}
	}
}
