// Benchmarks: one per paper table/figure (T2, F3-F8), the ablations
// called out in DESIGN.md (A1 MinHash prefilter, A2 candidate order,
// A3 baselines), and micro-benchmarks of the hot primitives. Each
// experiment benchmark runs a scaled configuration per iteration so
// `go test -bench=.` finishes in minutes; cmd/landlord-sim runs the
// full paper-scale versions.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cvmfs"
	"repro/internal/hep"
	"repro/internal/pkggraph"
	"repro/internal/shrinkwrap"
	"repro/internal/sim"
	"repro/internal/similarity"
	"repro/internal/spec"
	"repro/internal/workload"
)

var (
	fullRepoOnce sync.Once
	fullRepo     *pkggraph.Repo

	midRepoOnce sync.Once
	midRepo     *pkggraph.Repo
)

// benchFullRepo returns the paper-scale 9,660-package repository,
// generated once per process.
func benchFullRepo(b *testing.B) *pkggraph.Repo {
	b.Helper()
	fullRepoOnce.Do(func() {
		fullRepo = pkggraph.MustGenerate(pkggraph.DefaultGenConfig(), 1)
	})
	return fullRepo
}

// benchMidRepo returns a ~1,000-package repository for I/O-heavy
// benchmarks (Shrinkwrap builds touch every synthetic file).
func benchMidRepo(b *testing.B) *pkggraph.Repo {
	b.Helper()
	midRepoOnce.Do(func() {
		cfg := pkggraph.DefaultGenConfig()
		cfg.CoreFamilies = 4
		cfg.FrameworkFamilies = 12
		cfg.LibraryFamilies = 60
		cfg.ApplicationFamilies = 120
		midRepo = pkggraph.MustGenerate(cfg, 42)
	})
	return midRepo
}

// benchParams is the scaled standard simulation: 100 unique jobs x3 on
// the full repository with the paper's 1.4x cache:repo ratio.
func benchParams(repo *pkggraph.Repo) sim.Params {
	return sim.Params{
		Repo:       repo,
		Alpha:      0.75,
		CacheBytes: repo.TotalSize() * 14 / 10,
		UniqueJobs: 100,
		Repeats:    3,
		MaxInitial: 100,
		Seed:       1,
		UseMinHash: true,
	}
}

// BenchmarkTable2Shrinkwrap regenerates the Figure 2 table: builds all
// seven LHC benchmark application images via Shrinkwrap (experiment T2).
func BenchmarkTable2Shrinkwrap(b *testing.B) {
	repo := benchMidRepo(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())
		rows, err := hep.MeasureAll(builder, repo)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3Closure regenerates the Figure 3 curve: dependency
// closures over random selections (experiment F3).
func BenchmarkFig3Closure(b *testing.B) {
	repo := benchFullRepo(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := sim.ClosureCurve(repo, 500, 100, 10, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 5 {
			b.Fatalf("points = %d", len(points))
		}
	}
}

// BenchmarkFig4Sweep regenerates a scaled Figure 4 sweep: three α
// points, one repetition each (experiments F4a-c).
func BenchmarkFig4Sweep(b *testing.B) {
	repo := benchFullRepo(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := sim.SweepAlpha(benchParams(repo), []float64{0.40, 0.75, 0.95}, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 3 {
			b.Fatalf("points = %d", len(points))
		}
	}
}

// BenchmarkFig5Single regenerates the Figure 5 timeline: one
// instrumented simulation at α=0.75 (experiment F5).
func BenchmarkFig5Single(b *testing.B) {
	repo := benchFullRepo(b)
	p := benchParams(repo)
	p.TimelineEvery = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Timeline) == 0 {
			b.Fatal("no timeline")
		}
	}
}

// BenchmarkFig6Sensitivity regenerates a scaled Figure 6 row: the same
// sweep at two cache sizes (experiments F6a-d).
func BenchmarkFig6Sensitivity(b *testing.B) {
	repo := benchFullRepo(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, mult := range []int64{1, 5} {
			p := benchParams(repo)
			p.CacheBytes = repo.TotalSize() * mult
			if _, err := sim.SweepAlpha(p, []float64{0.60, 0.90}, 1, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig7Random regenerates the Figure 7 comparison: the
// dependency scheme versus the uniform-random scheme (experiment F7).
func BenchmarkFig7Random(b *testing.B) {
	repo := benchFullRepo(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, kind := range []sim.WorkloadKind{sim.WorkloadDeps, sim.WorkloadRandom} {
			p := benchParams(repo)
			p.Workload = kind
			if _, err := sim.Run(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8Zone regenerates a scaled Figure 8: sweep plus
// operational-zone detection (experiment F8).
func BenchmarkFig8Zone(b *testing.B) {
	repo := benchFullRepo(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := sim.SweepAlpha(benchParams(repo), []float64{0.40, 0.65, 0.80, 0.95}, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		sim.OperationalZone(points, 0.30, 2.0)
	}
}

// BenchmarkAblationMinHash compares Algorithm 1's candidate search
// with and without the MinHash prefilter (ablation A1): the paper
// argues the constant-time approximation is what makes large
// specification sets practical.
func BenchmarkAblationMinHash(b *testing.B) {
	repo := benchFullRepo(b)
	for _, mode := range []struct {
		name    string
		minhash bool
	}{{"exact", false}, {"minhash", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := benchParams(repo)
			p.UseMinHash = mode.minhash
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOrder compares closest-first merge-candidate
// ordering against arbitrary order (ablation A2).
func BenchmarkAblationOrder(b *testing.B) {
	repo := benchFullRepo(b)
	for _, mode := range []struct {
		name   string
		noSort bool
	}{{"closest-first", false}, {"unsorted", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := benchParams(repo)
			p.NoCandidateSort = mode.noSort
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselines runs the Section III comparison: LANDLORD vs
// naive vs layered vs full-repo stores on one stream (ablation A3).
func BenchmarkBaselines(b *testing.B) {
	repo := benchFullRepo(b)
	stream, err := workload.Stream(workload.NewDepClosure(repo, 1), 50, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunBaselines(repo, stream, 0.8, repo.TotalSize()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot primitives ---

func benchSpecs(b *testing.B, repo *pkggraph.Repo) (spec.Spec, spec.Spec) {
	b.Helper()
	gen := workload.NewDepClosure(repo, 9)
	return gen.Next(), gen.Next()
}

// BenchmarkJaccardDistance measures the exact set distance on
// realistic dependency-closed specifications (~500 packages each).
func BenchmarkJaccardDistance(b *testing.B) {
	repo := benchFullRepo(b)
	s1, s2 := benchSpecs(b, repo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.JaccardDistance(s1, s2)
	}
}

// BenchmarkMinHashSign measures signing a realistic specification with
// the default 64-hash sketch.
func BenchmarkMinHashSign(b *testing.B) {
	repo := benchFullRepo(b)
	s1, _ := benchSpecs(b, repo)
	h := similarity.MustNewHasher(64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sign(s1)
	}
}

// BenchmarkMinHashEstimate measures the constant-time distance
// estimate the prefilter uses per cached image.
func BenchmarkMinHashEstimate(b *testing.B) {
	repo := benchFullRepo(b)
	s1, s2 := benchSpecs(b, repo)
	h := similarity.MustNewHasher(64, 1)
	sig1, sig2 := h.Sign(s1), h.Sign(s2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.EstimateDistance(sig1, sig2)
	}
}

// BenchmarkSpecUnion measures the merge-walk union underlying every
// image merge.
func BenchmarkSpecUnion(b *testing.B) {
	repo := benchFullRepo(b)
	s1, s2 := benchSpecs(b, repo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1.Union(s2)
	}
}

// BenchmarkClosure measures dependency-closure expansion of a
// 100-package selection, the image-construction primitive.
func BenchmarkClosure(b *testing.B) {
	repo := benchFullRepo(b)
	ids := make([]pkggraph.PkgID, 100)
	for i := range ids {
		ids[i] = pkggraph.PkgID(i * 97 % repo.Len())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repo.Closure(ids)
	}
}

// BenchmarkManagerRequest measures Algorithm 1 end to end against a
// populated cache.
func BenchmarkManagerRequest(b *testing.B) {
	repo := benchFullRepo(b)
	mgr := core.MustNewManager(repo, core.Config{
		Alpha:    0.75,
		Capacity: repo.TotalSize() * 2,
		MinHash:  core.DefaultMinHash(),
	})
	gen := workload.NewDepClosure(repo, 5)
	// Populate with 50 images.
	warm := make([]spec.Spec, 200)
	for i := range warm {
		warm[i] = gen.Next()
		if i < 50 {
			if _, err := mgr.Request(warm[i]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Request(warm[i%len(warm)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShrinkwrapBuild measures one warm-cache image build.
func BenchmarkShrinkwrapBuild(b *testing.B) {
	repo := benchMidRepo(b)
	builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())
	gen := workload.NewDepClosure(repo, 3)
	gen.MaxInitial = 5
	s := gen.Next()
	if _, err := builder.Build(s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Build(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepoGenerate measures synthesizing the full SFT-scale
// repository.
func BenchmarkRepoGenerate(b *testing.B) {
	cfg := pkggraph.DefaultGenConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pkggraph.Generate(cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
