# LANDLORD reproduction build targets.

GO ?= go

.PHONY: all build vet test test-short race bench bench-guard fuzz check ha-chaos lint-metrics cover crash-test examples experiments clean

all: build vet lint-metrics test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full race-detector pass. Every package runs under -race — the
# concurrent request pipeline (core.ConcurrentManager, the server's
# handler fan-out, WAL group commit) makes data races a correctness
# bug anywhere, not just in the historically concurrent corners. The
# oracle-equivalence harness and soak are the heavyweight entries;
# the timeout gives them headroom on slow CI runners.
race:
	$(GO) test -race -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Allocation regression guard for the interned hot path: the hit-heavy
# steady state (cached spec repeats against a warm Manager) must run
# allocation-free. A fixed iteration count keeps the run cheap and
# deterministic; the guard fails the build the moment any per-request
# allocation sneaks back onto the hit path.
bench-guard:
	$(GO) test -run '^$$' -bench '^BenchmarkManagerSerial$$/hit-heavy' -benchmem -benchtime 2000x . \
		| awk '/hit-heavy/ { allocs = $$(NF-1); print; if (allocs + 0 != 0) { print "bench-guard: hit path allocates " allocs " allocs/op, want 0"; exit 1 } found = 1 } END { if (!found) { print "bench-guard: hit-heavy benchmark did not run"; exit 1 } }'

# Brief fuzzing pass over every fuzz target. Patterns are anchored:
# -fuzz is a regex, and an unanchored FuzzParse would also match
# FuzzSpecParse in the same package (go test refuses to fuzz two
# targets at once).
fuzz:
	$(GO) test ./internal/spec -fuzz '^FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/spec -fuzz '^FuzzSpecParse$$' -fuzztime 30s
	$(GO) test ./internal/config -fuzz '^FuzzConfigLoad$$' -fuzztime 30s
	$(GO) test ./internal/trace -fuzz '^FuzzLoad$$' -fuzztime 30s
	$(GO) test ./internal/pkggraph -fuzz '^FuzzLoad$$' -fuzztime 30s
	$(GO) test ./internal/shrinkwrap -fuzz '^FuzzUnpack$$' -fuzztime 30s
	$(GO) test ./internal/persist -fuzz '^FuzzWALDecode$$' -fuzztime 30s
	$(GO) test ./internal/spec -fuzz '^FuzzInternRoundTrip$$' -fuzztime 30s
	$(GO) test ./internal/spec -fuzz '^FuzzBitsetJaccard$$' -fuzztime 30s
	$(GO) test ./internal/core -fuzz '^FuzzShardRoute$$' -fuzztime 30s

# Short-budget invariant harness for every PR: the deterministic
# simulation suites (differential fast-vs-reference, unsharded, and
# sharded) and scaled-down soaks under the race detector, the mutant
# self-test (each of the twelve seeded bugs — six Algorithm 1 clauses,
# the shard-routing and budget-balancing mutants, the three fast-path
# mutants intern/popcount/lshmiss, plus the HA epoch-fencing mutant
# staleepoch — must be caught reproducibly; the fast-path three within
# the differential suite's 900 requests, staleepoch within the HA
# stage's first lease isolation), and one CLI chaos pass.
# `landlord-check sim` runs the sharded suite too.
check:
	$(GO) test -race -short -count=1 ./internal/check
	$(GO) test -run 'TestMutants|TestMutantFailure' -count=1 ./internal/check
	$(GO) run ./cmd/landlord-check sim -seed 1
	$(GO) run ./cmd/landlord-check tracesim -seed 1
	$(GO) run ./cmd/landlord-check fleetchaos -seed 1
	$(GO) run ./cmd/landlord-check hachaos -seed 1

# High-availability chaos gate: the primary+standby failover harness
# under the race detector (two-tick promotion, recovered-state
# byte-identity, single acking primary per round, warm drain handoff,
# WAL replica equality), then one CLI pass with a shifted fault
# schedule.
ha-chaos:
	$(GO) test -race -count=1 -run TestHAChaos ./internal/check
	$(GO) run ./cmd/landlord-check hachaos -seed 1 -kill-phase 7

# Static metric-registration audit: the same family registered under
# two kinds or two help strings renders a /metrics exposition
# Prometheus rejects; the registry only catches it at runtime on paths
# that execute. Fails the build on any conflict.
lint-metrics:
	$(GO) run ./cmd/landlord-lint -root .

# Coverage profile across every package (atomic mode: the concurrent
# suites are the interesting part).
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Durability gauntlet: the persist fault-injection suite (every WAL
# truncation and bit-flip) plus the end-to-end kill -9 daemon test.
crash-test:
	$(GO) test -v -run 'TestCrashRecovery|TestTornTail|TestRecoverFallsBack|TestCheckpointCompaction' ./internal/persist
	$(GO) test -v -run TestDaemonSurvivesKill9 ./cmd/landlordd

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/specscan
	$(GO) run ./examples/site-service
	$(GO) run ./examples/hep-pipeline
	$(GO) run ./examples/alpha-sweep
	$(GO) run ./examples/multisite

# Regenerate every paper artifact at full scale into results/.
experiments:
	$(GO) build -o bin/landlord-sim ./cmd/landlord-sim
	mkdir -p results
	bin/landlord-sim repo       | tee results/repo.txt
	bin/landlord-sim table2     | tee results/table2.txt
	bin/landlord-sim fig3       | tee results/fig3.txt
	bin/landlord-sim fig4       | tee results/fig4.txt
	bin/landlord-sim fig5       | tee results/fig5.txt
	bin/landlord-sim fig6 -reps 5 | tee results/fig6.txt
	bin/landlord-sim fig7       | tee results/fig7.txt
	bin/landlord-sim fig8       | tee results/fig8.txt
	bin/landlord-sim baselines  | tee results/baselines.txt
	bin/landlord-sim cluster    | tee results/cluster.txt
	bin/landlord-sim drift      | tee results/drift.txt
	bin/landlord-sim dedup      | tee results/dedup.txt
	bin/landlord-sim latency    | tee results/latency.txt

clean:
	rm -rf bin
