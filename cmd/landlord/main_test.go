package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pkggraph"
)

// writeSmallRepo saves a scaled-down repository file so tests avoid
// generating the full 9,660-package default on every run.
func writeSmallRepo(t *testing.T) string {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 5
	cfg.LibraryFamilies = 20
	cfg.ApplicationFamilies = 33
	repo := pkggraph.MustGenerate(cfg, 42)
	path := filepath.Join(t.TempDir(), "repo.jsonl")
	if err := repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// specFileFor writes a spec file containing the given package keys.
func specFileFor(t *testing.T, repoFile string, n int) string {
	t.Helper()
	repo, err := pkggraph.LoadFile(repoFile)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(t.TempDir(), "*.spec")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := pkggraph.PkgID((i * 37) % repo.Len())
		if _, err := f.WriteString(repo.Package(id).Key() + "\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Name()
}

func TestRunInsertThenHitPersists(t *testing.T) {
	repoFile := writeSmallRepo(t)
	cacheDir := t.TempDir()
	specFile := specFileFor(t, repoFile, 2)

	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, []string{"./job.sh"}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	statePath := filepath.Join(cacheDir, "state.json")
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("state not persisted: %v", err)
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("state not valid JSON: %v", err)
	}
	if len(st.Images) != 1 {
		t.Fatalf("state holds %d images, want 1", len(st.Images))
	}
	// Second invocation loads the state and hits.
	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, nil); err != nil {
		t.Fatalf("second run: %v", err)
	}
	data2, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	var st2 stateFile
	if err := json.Unmarshal(data2, &st2); err != nil {
		t.Fatal(err)
	}
	if len(st2.Images) != 1 {
		t.Fatalf("hit should not create images: %d", len(st2.Images))
	}
}

func TestRunStatsMode(t *testing.T) {
	repoFile := writeSmallRepo(t)
	if err := run(t.TempDir(), "", 0.8, 0, 1, repoFile, false, true, nil); err != nil {
		t.Fatalf("stats on empty cache: %v", err)
	}
}

func TestRunMissingSpec(t *testing.T) {
	repoFile := writeSmallRepo(t)
	if err := run(t.TempDir(), "", 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("missing -spec accepted")
	}
	if err := run(t.TempDir(), "/nonexistent.spec", 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("nonexistent spec file accepted")
	}
}

func TestRunBadAlpha(t *testing.T) {
	repoFile := writeSmallRepo(t)
	specFile := specFileFor(t, repoFile, 1)
	if err := run(t.TempDir(), specFile, 3.0, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("alpha 3.0 accepted")
	}
}

func TestRunEmptySpecFile(t *testing.T) {
	repoFile := writeSmallRepo(t)
	empty := filepath.Join(t.TempDir(), "empty.spec")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if err := run(t.TempDir(), empty, 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestRunMaterialize(t *testing.T) {
	repoFile := writeSmallRepo(t)
	specFile := specFileFor(t, repoFile, 1)
	if err := run(t.TempDir(), specFile, 0.8, 0, 1, repoFile, true, false, nil); err != nil {
		t.Fatalf("materialize: %v", err)
	}
}

func TestRunCorruptState(t *testing.T) {
	repoFile := writeSmallRepo(t)
	cacheDir := t.TempDir()
	os.WriteFile(filepath.Join(cacheDir, "state.json"), []byte("{broken"), 0o644)
	specFile := specFileFor(t, repoFile, 1)
	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("corrupt state accepted")
	}
}

func TestRunCapacityEvicts(t *testing.T) {
	repoFile := writeSmallRepo(t)
	cacheDir := t.TempDir()
	// Tiny capacity: each new image evicts the previous one.
	a := specFileFor(t, repoFile, 1)
	b := specFileFor(t, repoFile, 3)
	if err := run(cacheDir, a, 0.0, 0.000001, 1, repoFile, false, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(cacheDir, b, 0.0, 0.000001, 1, repoFile, false, false, nil); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(cacheDir, "state.json"))
	var st stateFile
	json.Unmarshal(data, &st)
	if len(st.Images) != 1 {
		t.Fatalf("capacity 1KB should keep a single (oversized) image, got %d", len(st.Images))
	}
}
