package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pkggraph"
)

// readState loads the checkpoint-format cache state a run left behind.
func readState(t *testing.T, cacheDir string) persist.Checkpoint {
	t.Helper()
	ck, err := persist.ReadCheckpointFile(filepath.Join(cacheDir, stateName))
	if err != nil {
		t.Fatalf("state not persisted: %v", err)
	}
	return ck
}

// writeSmallRepo saves a scaled-down repository file so tests avoid
// generating the full 9,660-package default on every run.
func writeSmallRepo(t *testing.T) string {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 5
	cfg.LibraryFamilies = 20
	cfg.ApplicationFamilies = 33
	repo := pkggraph.MustGenerate(cfg, 42)
	path := filepath.Join(t.TempDir(), "repo.jsonl")
	if err := repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// specFileFor writes a spec file containing the given package keys.
func specFileFor(t *testing.T, repoFile string, n int) string {
	t.Helper()
	repo, err := pkggraph.LoadFile(repoFile)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(t.TempDir(), "*.spec")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := pkggraph.PkgID((i * 37) % repo.Len())
		if _, err := f.WriteString(repo.Package(id).Key() + "\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Name()
}

func TestRunInsertThenHitPersists(t *testing.T) {
	repoFile := writeSmallRepo(t)
	cacheDir := t.TempDir()
	specFile := specFileFor(t, repoFile, 2)

	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, []string{"./job.sh"}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	st := readState(t, cacheDir)
	if len(st.State.Images) != 1 {
		t.Fatalf("state holds %d images, want 1", len(st.State.Images))
	}
	if st.Meta["repo_file"] != repoFile {
		t.Fatalf("state meta records repo %q, want %q", st.Meta["repo_file"], repoFile)
	}
	// Second invocation loads the state and hits.
	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, nil); err != nil {
		t.Fatalf("second run: %v", err)
	}
	st2 := readState(t, cacheDir)
	if len(st2.State.Images) != 1 {
		t.Fatalf("hit should not create images: %d", len(st2.State.Images))
	}
	// Checkpoint state is cumulative: the hit keeps the image identity
	// and the stats carry across invocations.
	if st2.State.Images[0].ID != st.State.Images[0].ID {
		t.Errorf("image ID changed across a hit: %d -> %d", st.State.Images[0].ID, st2.State.Images[0].ID)
	}
	if st2.State.Stats.Requests != 2 || st2.State.Stats.Hits != 1 {
		t.Errorf("cumulative stats = %+v, want 2 requests / 1 hit", st2.State.Stats)
	}
}

func TestRunStatsMode(t *testing.T) {
	repoFile := writeSmallRepo(t)
	if err := run(t.TempDir(), "", 0.8, 0, 1, repoFile, false, true, nil); err != nil {
		t.Fatalf("stats on empty cache: %v", err)
	}
}

func TestRunMissingSpec(t *testing.T) {
	repoFile := writeSmallRepo(t)
	if err := run(t.TempDir(), "", 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("missing -spec accepted")
	}
	if err := run(t.TempDir(), "/nonexistent.spec", 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("nonexistent spec file accepted")
	}
}

func TestRunBadAlpha(t *testing.T) {
	repoFile := writeSmallRepo(t)
	specFile := specFileFor(t, repoFile, 1)
	if err := run(t.TempDir(), specFile, 3.0, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("alpha 3.0 accepted")
	}
}

func TestRunEmptySpecFile(t *testing.T) {
	repoFile := writeSmallRepo(t)
	empty := filepath.Join(t.TempDir(), "empty.spec")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if err := run(t.TempDir(), empty, 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestRunMaterialize(t *testing.T) {
	repoFile := writeSmallRepo(t)
	specFile := specFileFor(t, repoFile, 1)
	if err := run(t.TempDir(), specFile, 0.8, 0, 1, repoFile, true, false, nil); err != nil {
		t.Fatalf("materialize: %v", err)
	}
}

func TestRunCorruptState(t *testing.T) {
	repoFile := writeSmallRepo(t)
	cacheDir := t.TempDir()
	os.WriteFile(filepath.Join(cacheDir, stateName), []byte("not a checkpoint frame"), 0o644)
	specFile := specFileFor(t, repoFile, 1)
	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("corrupt state accepted")
	}
}

func TestRunCorruptLegacyState(t *testing.T) {
	repoFile := writeSmallRepo(t)
	cacheDir := t.TempDir()
	os.WriteFile(filepath.Join(cacheDir, legacyStateName), []byte("{broken"), 0o644)
	specFile := specFileFor(t, repoFile, 1)
	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, nil); err == nil {
		t.Fatal("corrupt legacy state accepted")
	}
}

// TestRunLegacyStateMigration: a pre-checkpoint cache directory (plain
// state.json) is read, and the next save upgrades it in place.
func TestRunLegacyStateMigration(t *testing.T) {
	repoFile := writeSmallRepo(t)
	repo, err := pkggraph.LoadFile(repoFile)
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	legacy := legacyStateFile{
		RepoSeed: 1,
		RepoFile: repoFile,
		Images: []core.ImageSnapshot{{
			Packages: []string{repo.Package(0).Key()},
			LastUse:  1,
		}},
	}
	data, err := json.Marshal(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	legacyPath := filepath.Join(cacheDir, legacyStateName)
	if err := os.WriteFile(legacyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	specFile := specFileFor(t, repoFile, 1)
	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, nil); err != nil {
		t.Fatalf("run over legacy state: %v", err)
	}
	st := readState(t, cacheDir)
	if len(st.State.Images) == 0 {
		t.Fatal("legacy image lost in migration")
	}
	if _, err := os.Stat(legacyPath); !os.IsNotExist(err) {
		t.Errorf("legacy state.json not retired after migration (stat err: %v)", err)
	}
}

// TestRunRepoMismatch: reusing a cache directory against a different
// repository is refused instead of resolving keys against the wrong
// package set.
func TestRunRepoMismatch(t *testing.T) {
	repoFile := writeSmallRepo(t)
	cacheDir := t.TempDir()
	specFile := specFileFor(t, repoFile, 1)
	if err := run(cacheDir, specFile, 0.8, 0, 1, repoFile, false, false, nil); err != nil {
		t.Fatal(err)
	}
	// Same repository content under a different path still mismatches:
	// identity is (seed, file) as given, conservatively.
	otherFile := filepath.Join(t.TempDir(), "other.jsonl")
	data, err := os.ReadFile(repoFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(otherFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cacheDir, specFile, 0.8, 0, 1, otherFile, false, false, nil); err == nil {
		t.Fatal("repository mismatch accepted")
	}
}

func TestRunCapacityEvicts(t *testing.T) {
	repoFile := writeSmallRepo(t)
	cacheDir := t.TempDir()
	// Tiny capacity: each new image evicts the previous one.
	a := specFileFor(t, repoFile, 1)
	b := specFileFor(t, repoFile, 3)
	if err := run(cacheDir, a, 0.0, 0.000001, 1, repoFile, false, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(cacheDir, b, 0.0, 0.000001, 1, repoFile, false, false, nil); err != nil {
		t.Fatal(err)
	}
	st := readState(t, cacheDir)
	if len(st.State.Images) != 1 {
		t.Fatalf("capacity 1KB should keep a single (oversized) image, got %d", len(st.State.Images))
	}
}
