// Command landlord is the user-level job wrapper of Section V: given a
// container specification for a job, it consults a persistent image
// cache, reuses or merges or creates an image per Algorithm 1, then
// "launches" the job inside the prepared container (execution is
// simulated in this reproduction; the container preparation, cache
// state, and I/O accounting are real).
//
// Typical use:
//
//	landlord -cache-dir /scratch/images -spec job.spec -- ./analysis.sh
//
// The cache directory persists between invocations, so a stream of job
// submissions sees exactly the hit/merge/insert behaviour the paper
// describes. State is stored as a CRC-validated checkpoint
// (internal/persist format, shared with landlordd); pre-existing
// plain-JSON state.json directories are migrated on first save.
// `landlord -stats` prints the cache state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cvmfs"
	"repro/internal/persist"
	"repro/internal/pkggraph"
	"repro/internal/shrinkwrap"
	"repro/internal/spec"
	"repro/internal/stats"
)

// State lives in <cache-dir>/state.ckpt, a single CRC-framed checkpoint
// in the internal/persist format (the same one landlordd compacts its
// WAL into). Older cache directories hold a plain-JSON state.json; it
// is still read, and the first save migrates it to the new format.
const (
	stateName       = "state.ckpt"
	legacyStateName = "state.json"
)

// legacyStateFile is the pre-checkpoint plain-JSON cache state, kept
// only so existing cache directories survive the format change.
type legacyStateFile struct {
	RepoSeed int64                `json:"repo_seed"`
	RepoFile string               `json:"repo_file,omitempty"`
	Images   []core.ImageSnapshot `json:"images"`
}

func main() {
	var (
		cacheDir    = flag.String("cache-dir", "landlord-cache", "directory holding the persistent image cache state")
		specPath    = flag.String("spec", "", "container specification file (one package key per line)")
		alpha       = flag.Float64("alpha", 0.8, "merge threshold (paper recommends a moderate 0.8 to start)")
		capacityGB  = flag.Float64("capacity-gb", 0, "cache capacity in GB (0 = unlimited)")
		repoSeed    = flag.Int64("repo-seed", 1, "seed for the synthetic repository")
		repoFile    = flag.String("repo-file", "", "load the repository from this JSONL file")
		materialize = flag.Bool("materialize", false, "build the image contents via shrinkwrap and report I/O")
		showStats   = flag.Bool("stats", false, "print cache state and exit")
	)
	flag.Parse()

	if err := run(*cacheDir, *specPath, *alpha, *capacityGB, *repoSeed, *repoFile, *materialize, *showStats, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "landlord: %v\n", err)
		os.Exit(1)
	}
}

func run(cacheDir, specPath string, alpha, capacityGB float64, repoSeed int64, repoFile string, materialize, showStats bool, jobArgs []string) error {
	repo, err := loadRepo(repoSeed, repoFile)
	if err != nil {
		return err
	}
	mgr, err := core.NewManager(repo, core.Config{
		Alpha:    alpha,
		Capacity: int64(capacityGB * float64(stats.GB)),
		MinHash:  core.DefaultMinHash(),
	})
	if err != nil {
		return err
	}
	if err := loadState(cacheDir, mgr, repoSeed, repoFile); err != nil {
		return err
	}

	if showStats {
		printStats(mgr, repo)
		return nil
	}
	if specPath == "" {
		return fmt.Errorf("missing -spec (or -stats); run with -h for usage")
	}

	f, err := os.Open(specPath)
	if err != nil {
		return err
	}
	s, err := spec.Parse(f, repo)
	f.Close()
	if err != nil {
		return err
	}
	if s.Empty() {
		return fmt.Errorf("specification %s is empty", specPath)
	}
	// Images must contain the full dependency closure of the request;
	// partial-package or partial-dependency images are unreliable.
	closed := spec.WithClosure(repo, s.IDs())
	if closed.Len() != s.Len() {
		fmt.Printf("landlord: expanded %d requested packages to %d with dependencies\n",
			s.Len(), closed.Len())
	}
	s = closed

	res, err := mgr.Request(s)
	if err != nil {
		return err
	}
	fmt.Printf("landlord: %s -> image %d (%s, efficiency %.1f%%)\n",
		res.Op, res.ImageID, stats.FormatBytes(res.ImageSize), res.ContainerEfficiency()*100)
	if res.BytesWritten > 0 {
		fmt.Printf("landlord: wrote %s preparing the image\n", stats.FormatBytes(res.BytesWritten))
	}
	if res.Evicted > 0 {
		fmt.Printf("landlord: evicted %d image(s) (%s) to stay within capacity\n",
			res.Evicted, stats.FormatBytes(res.EvictedBytes))
	}

	if materialize {
		builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())
		rep, err := builder.Build(s)
		if err != nil {
			return err
		}
		fmt.Printf("landlord: shrinkwrap packed %d files, %s (simulated %.0fs)\n",
			rep.Image.Files, stats.FormatBytes(rep.WrittenBytes), rep.PrepTime.Seconds())
	}

	// Record the per-package usage lines that specscan.ScanJobLog
	// understands, so future specs can be derived from this job's log.
	for _, id := range s.IDs() {
		fmt.Printf("landlord: using package %s\n", repo.Package(id).Key())
	}

	if len(jobArgs) > 0 {
		fmt.Printf("landlord: launching (simulated): %s\n", strings.Join(jobArgs, " "))
	}

	return saveState(cacheDir, mgr, repoSeed, repoFile)
}

func loadRepo(seed int64, file string) (*pkggraph.Repo, error) {
	if file != "" {
		return pkggraph.LoadFile(file)
	}
	return pkggraph.Generate(pkggraph.DefaultGenConfig(), seed)
}

// repoMeta describes the repository the cache was built against, so a
// later invocation with a different repository fails loudly instead of
// resolving package keys against the wrong package set.
func repoMeta(repoSeed int64, repoFile string) map[string]string {
	return map[string]string{
		"repo_seed": strconv.FormatInt(repoSeed, 10),
		"repo_file": repoFile,
	}
}

func loadState(cacheDir string, mgr *core.Manager, repoSeed int64, repoFile string) error {
	path := filepath.Join(cacheDir, stateName)
	ck, err := persist.ReadCheckpointFile(path)
	if os.IsNotExist(err) {
		return loadLegacyState(filepath.Join(cacheDir, legacyStateName), mgr)
	}
	if err != nil {
		return fmt.Errorf("corrupt state %s: %w", path, err)
	}
	if want := repoMeta(repoSeed, repoFile); ck.Meta["repo_seed"] != want["repo_seed"] || ck.Meta["repo_file"] != want["repo_file"] {
		return fmt.Errorf("cache %s was built against repository {seed %s, file %q}, not {seed %s, file %q}; use a fresh -cache-dir",
			cacheDir, ck.Meta["repo_seed"], ck.Meta["repo_file"], want["repo_seed"], want["repo_file"])
	}
	return mgr.ImportState(ck.State)
}

// loadLegacyState reads the pre-checkpoint state.json format. Image IDs
// are reassigned (the legacy format predates stable IDs) and stats
// start at zero, matching the old behaviour exactly.
func loadLegacyState(path string, mgr *core.Manager) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var st legacyStateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("corrupt state %s: %w", path, err)
	}
	return mgr.Restore(st.Images)
}

func saveState(cacheDir string, mgr *core.Manager, repoSeed int64, repoFile string) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(cacheDir, stateName)
	err := persist.WriteCheckpointFile(path, persist.Checkpoint{
		SavedUnixNano: time.Now().UnixNano(),
		Meta:          repoMeta(repoSeed, repoFile),
		State:         mgr.ExportState(),
	})
	if err != nil {
		return err
	}
	// The checkpoint is durable; a leftover legacy file would shadow
	// nothing (state.ckpt wins) but confuse operators, so retire it.
	if legacy := filepath.Join(cacheDir, legacyStateName); fileExists(legacy) {
		if err := os.Remove(legacy); err != nil {
			return fmt.Errorf("retiring legacy %s: %w", legacy, err)
		}
	}
	return nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func printStats(mgr *core.Manager, repo *pkggraph.Repo) {
	imgs := mgr.Images()
	fmt.Printf("cache: %d image(s), %s total, %s unique (efficiency %.1f%%)\n",
		len(imgs), stats.FormatBytes(mgr.TotalData()),
		stats.FormatBytes(mgr.UniqueData()), mgr.CacheEfficiency()*100)
	for _, img := range imgs {
		fmt.Printf("  image %d: %d packages, %s, %d merges\n",
			img.ID, img.Spec.Len(), stats.FormatBytes(img.Size), img.Merges)
	}
}
