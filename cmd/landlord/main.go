// Command landlord is the user-level job wrapper of Section V: given a
// container specification for a job, it consults a persistent image
// cache, reuses or merges or creates an image per Algorithm 1, then
// "launches" the job inside the prepared container (execution is
// simulated in this reproduction; the container preparation, cache
// state, and I/O accounting are real).
//
// Typical use:
//
//	landlord -cache-dir /scratch/images -spec job.spec -- ./analysis.sh
//
// The cache directory persists between invocations, so a stream of job
// submissions sees exactly the hit/merge/insert behaviour the paper
// describes. `landlord -stats` prints the cache state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/cvmfs"
	"repro/internal/pkggraph"
	"repro/internal/shrinkwrap"
	"repro/internal/spec"
	"repro/internal/stats"
)

// stateFile is the persisted cache state within the cache directory.
type stateFile struct {
	RepoSeed int64                `json:"repo_seed"`
	RepoFile string               `json:"repo_file,omitempty"`
	Images   []core.ImageSnapshot `json:"images"`
}

func main() {
	var (
		cacheDir    = flag.String("cache-dir", "landlord-cache", "directory holding the persistent image cache state")
		specPath    = flag.String("spec", "", "container specification file (one package key per line)")
		alpha       = flag.Float64("alpha", 0.8, "merge threshold (paper recommends a moderate 0.8 to start)")
		capacityGB  = flag.Float64("capacity-gb", 0, "cache capacity in GB (0 = unlimited)")
		repoSeed    = flag.Int64("repo-seed", 1, "seed for the synthetic repository")
		repoFile    = flag.String("repo-file", "", "load the repository from this JSONL file")
		materialize = flag.Bool("materialize", false, "build the image contents via shrinkwrap and report I/O")
		showStats   = flag.Bool("stats", false, "print cache state and exit")
	)
	flag.Parse()

	if err := run(*cacheDir, *specPath, *alpha, *capacityGB, *repoSeed, *repoFile, *materialize, *showStats, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "landlord: %v\n", err)
		os.Exit(1)
	}
}

func run(cacheDir, specPath string, alpha, capacityGB float64, repoSeed int64, repoFile string, materialize, showStats bool, jobArgs []string) error {
	repo, err := loadRepo(repoSeed, repoFile)
	if err != nil {
		return err
	}
	mgr, err := core.NewManager(repo, core.Config{
		Alpha:    alpha,
		Capacity: int64(capacityGB * float64(stats.GB)),
		MinHash:  core.DefaultMinHash(),
	})
	if err != nil {
		return err
	}
	statePath := filepath.Join(cacheDir, "state.json")
	if err := loadState(statePath, mgr); err != nil {
		return err
	}

	if showStats {
		printStats(mgr, repo)
		return nil
	}
	if specPath == "" {
		return fmt.Errorf("missing -spec (or -stats); run with -h for usage")
	}

	f, err := os.Open(specPath)
	if err != nil {
		return err
	}
	s, err := spec.Parse(f, repo)
	f.Close()
	if err != nil {
		return err
	}
	if s.Empty() {
		return fmt.Errorf("specification %s is empty", specPath)
	}
	// Images must contain the full dependency closure of the request;
	// partial-package or partial-dependency images are unreliable.
	closed := spec.WithClosure(repo, s.IDs())
	if closed.Len() != s.Len() {
		fmt.Printf("landlord: expanded %d requested packages to %d with dependencies\n",
			s.Len(), closed.Len())
	}
	s = closed

	res, err := mgr.Request(s)
	if err != nil {
		return err
	}
	fmt.Printf("landlord: %s -> image %d (%s, efficiency %.1f%%)\n",
		res.Op, res.ImageID, stats.FormatBytes(res.ImageSize), res.ContainerEfficiency()*100)
	if res.BytesWritten > 0 {
		fmt.Printf("landlord: wrote %s preparing the image\n", stats.FormatBytes(res.BytesWritten))
	}
	if res.Evicted > 0 {
		fmt.Printf("landlord: evicted %d image(s) (%s) to stay within capacity\n",
			res.Evicted, stats.FormatBytes(res.EvictedBytes))
	}

	if materialize {
		builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())
		rep, err := builder.Build(s)
		if err != nil {
			return err
		}
		fmt.Printf("landlord: shrinkwrap packed %d files, %s (simulated %.0fs)\n",
			rep.Image.Files, stats.FormatBytes(rep.WrittenBytes), rep.PrepTime.Seconds())
	}

	// Record the per-package usage lines that specscan.ScanJobLog
	// understands, so future specs can be derived from this job's log.
	for _, id := range s.IDs() {
		fmt.Printf("landlord: using package %s\n", repo.Package(id).Key())
	}

	if len(jobArgs) > 0 {
		fmt.Printf("landlord: launching (simulated): %s\n", strings.Join(jobArgs, " "))
	}

	return saveState(statePath, stateFile{
		RepoSeed: repoSeed,
		RepoFile: repoFile,
		Images:   mgr.Snapshot(),
	})
}

func loadRepo(seed int64, file string) (*pkggraph.Repo, error) {
	if file != "" {
		return pkggraph.LoadFile(file)
	}
	return pkggraph.Generate(pkggraph.DefaultGenConfig(), seed)
}

func loadState(path string, mgr *core.Manager) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("corrupt state %s: %w", path, err)
	}
	return mgr.Restore(st.Images)
}

func saveState(path string, st stateFile) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func printStats(mgr *core.Manager, repo *pkggraph.Repo) {
	imgs := mgr.Images()
	fmt.Printf("cache: %d image(s), %s total, %s unique (efficiency %.1f%%)\n",
		len(imgs), stats.FormatBytes(mgr.TotalData()),
		stats.FormatBytes(mgr.UniqueData()), mgr.CacheEfficiency()*100)
	for _, img := range imgs {
		fmt.Printf("  image %d: %d packages, %s, %d merges\n",
			img.ID, img.Spec.Len(), stats.FormatBytes(img.Size), img.Merges)
	}
}
