package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write writes one source file into dir.
func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func scan(t *testing.T, dir string) ([]registration, []string) {
	t.Helper()
	regs, err := scanTree(dir)
	if err != nil {
		t.Fatalf("scanTree: %v", err)
	}
	return regs, findConflicts(regs)
}

func TestResolvesLiteralsFileConstsAndLocalConsts(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package p

const fileName = "landlord_file_total"
const fileHelp = "from a file const"

func a(reg *Registry) {
	reg.Counter("landlord_lit_total", "literal "+"concat")
	reg.Gauge(fileName, fileHelp)
}

func b(reg *Registry) {
	const name = "landlord_local_seconds"
	const help = "from a local const"
	reg.Histogram(name, help, nil)
}
`)
	regs, conflicts := scan(t, dir)
	if len(conflicts) != 0 {
		t.Fatalf("unexpected conflicts: %v", conflicts)
	}
	got := map[string]string{}
	for _, r := range regs {
		got[r.name] = r.kind
	}
	want := map[string]string{
		"landlord_lit_total":     "Counter",
		"landlord_file_total":    "Gauge",
		"landlord_local_seconds": "Histogram",
	}
	for name, kind := range want {
		if got[name] != kind {
			t.Fatalf("metric %s: got kind %q, want %q (all: %v)", name, got[name], kind, got)
		}
	}
}

func TestLocalConstsDoNotLeakAcrossFunctions(t *testing.T) {
	dir := t.TempDir()
	// Two functions reuse the idiomatic `const name` with different
	// values — the repo's registerContentionMetrics/newOpTracer shape.
	write(t, dir, "a.go", `package p

func a(reg *Registry) {
	const name = "landlord_a_seconds"
	const help = "a"
	reg.Histogram(name, help, nil)
}

func b(reg *Registry) {
	const name = "landlord_b_seconds"
	const help = "b"
	reg.Histogram(name, help, nil)
}
`)
	regs, conflicts := scan(t, dir)
	if len(conflicts) != 0 {
		t.Fatalf("unexpected conflicts: %v", conflicts)
	}
	if len(regs) != 2 || regs[0].name == regs[1].name {
		t.Fatalf("want two distinct names, got %+v", regs)
	}
}

func TestFlagsKindConflict(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package p

func a(reg *Registry) {
	reg.Counter("landlord_x_total", "x")
	reg.Gauge("landlord_x_total", "x")
}
`)
	_, conflicts := scan(t, dir)
	if len(conflicts) != 1 || !strings.Contains(conflicts[0], "registered as Gauge") {
		t.Fatalf("want one kind conflict, got %v", conflicts)
	}
}

func TestFlagsHelpConflict(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package p

func a(reg *Registry) {
	reg.Counter("landlord_y_total", "one help")
}
`)
	write(t, dir, "b.go", `package p

func b(reg *Registry) {
	reg.Counter("landlord_y_total", "another help")
}
`)
	_, conflicts := scan(t, dir)
	if len(conflicts) != 1 || !strings.Contains(conflicts[0], "help") {
		t.Fatalf("want one help conflict, got %v", conflicts)
	}
}

func TestLabelVariantsAreNotConflicts(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package p

func a(reg *Registry) {
	reg.Counter("landlord_z_total", "same", Label{"op", "hit"})
	reg.Counter("landlord_z_total", "same", Label{"op", "merge"})
}
`)
	_, conflicts := scan(t, dir)
	if len(conflicts) != 0 {
		t.Fatalf("label variants flagged: %v", conflicts)
	}
}

func TestSkipsTestFilesAndDynamicNames(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a_test.go", `package p

func a(reg *Registry) {
	reg.Counter("landlord_t_total", "from a test")
	reg.Gauge("landlord_t_total", "conflicting, but tests are exempt")
}
`)
	write(t, dir, "b.go", `package p

func b(reg *Registry, dynamic string) {
	reg.Counter(dynamic, "unresolvable name is skipped, not guessed")
}
`)
	regs, conflicts := scan(t, dir)
	if len(regs) != 0 || len(conflicts) != 0 {
		t.Fatalf("want nothing, got regs=%v conflicts=%v", regs, conflicts)
	}
}

// TestRepoIsClean runs the linter over the repository itself — the
// same invocation CI uses. A conflict here is a real bug.
func TestRepoIsClean(t *testing.T) {
	regs, conflicts := scan(t, "../..")
	if len(conflicts) != 0 {
		t.Fatalf("repository has metric conflicts:\n%s", strings.Join(conflicts, "\n"))
	}
	if len(regs) == 0 {
		t.Fatalf("scanned the repository but found no registrations")
	}
}
