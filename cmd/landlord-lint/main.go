// Command landlord-lint statically audits metric registrations:
//
//	landlord-lint [-root dir]
//
// It parses every non-test Go file under the root and collects each
// Counter/Gauge/GaugeFunc/Histogram registration whose name and help
// arguments resolve to string constants — literals, file-level consts,
// or function-local consts (the repo's `const name = ...` idiom).
// Registering the same metric name with two different kinds, or the
// same name with two different help strings, is reported and the
// process exits non-zero. Registering the same (name, kind, help)
// from several sites is fine: those are label variants of one family.
//
// This is the scrape-time failure class the registry itself can only
// catch at runtime (and only on paths that actually execute): a
// conflicting family renders /metrics output that Prometheus rejects.
// CI runs this on every build via `make lint-metrics`.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricMethods are the registry constructors whose first two
// arguments are (name, help).
var metricMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

// metricName is the Prometheus metric-name grammar; unresolvable or
// non-conforming first arguments are skipped rather than guessed at.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// registration is one resolved call site.
type registration struct {
	name string
	kind string
	help string
	pos  token.Position
}

func main() {
	root := flag.String("root", ".", "directory tree to scan")
	flag.Parse()
	regs, err := scanTree(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "landlord-lint:", err)
		os.Exit(1)
	}
	conflicts := findConflicts(regs)
	for _, c := range conflicts {
		fmt.Fprintln(os.Stderr, c)
	}
	if len(conflicts) > 0 {
		os.Exit(1)
	}
	names := map[string]bool{}
	for _, r := range regs {
		names[r.name] = true
	}
	fmt.Printf("landlord-lint: %d metric registration(s), %d family(ies), no conflicts\n",
		len(regs), len(names))
}

// findConflicts groups registrations by name and reports any family
// registered under more than one kind or help string.
func findConflicts(regs []registration) []string {
	byName := map[string][]registration{}
	for _, r := range regs {
		byName[r.name] = append(byName[r.name], r)
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		group := byName[name]
		for _, r := range group[1:] {
			if r.kind != group[0].kind {
				out = append(out, fmt.Sprintf(
					"%s: metric %q registered as %s, but %s registered it as %s",
					r.pos, name, r.kind, group[0].pos, group[0].kind))
			} else if r.help != group[0].help {
				out = append(out, fmt.Sprintf(
					"%s: metric %q help %q conflicts with %q at %s",
					r.pos, name, r.help, group[0].help, group[0].pos))
			}
		}
	}
	return out
}

// scanTree walks root, parsing each package directory's non-test
// files together so file-level consts resolve across the package.
func scanTree(root string) ([]registration, error) {
	dirs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(dirs))
	for dir := range dirs {
		paths = append(paths, dir)
	}
	sort.Strings(paths)
	var regs []registration
	for _, dir := range paths {
		sort.Strings(dirs[dir])
		r, err := scanPackage(dirs[dir])
		if err != nil {
			return nil, err
		}
		regs = append(regs, r...)
	}
	return regs, nil
}

// scanPackage parses the files of one package and extracts resolved
// registrations.
func scanPackage(files []string) ([]registration, error) {
	fset := token.NewFileSet()
	parsed := make([]*ast.File, 0, len(files))
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		parsed = append(parsed, f)
	}
	// Package-level string consts are visible from every file.
	pkgConsts := map[string]string{}
	for _, f := range parsed {
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.CONST {
				collectConsts(gd, pkgConsts, nil)
			}
		}
	}
	var regs []registration
	for _, f := range parsed {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Function-local consts shadow package ones.
			local := map[string]string{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gd, ok := n.(*ast.GenDecl); ok && gd.Tok == token.CONST {
					collectConsts(gd, local, pkgConsts)
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !metricMethods[sel.Sel.Name] || len(call.Args) < 2 {
					return true
				}
				name, ok1 := resolveString(call.Args[0], local, pkgConsts)
				help, ok2 := resolveString(call.Args[1], local, pkgConsts)
				if !ok1 || !ok2 || !metricName.MatchString(name) {
					return true
				}
				regs = append(regs, registration{
					name: name, kind: sel.Sel.Name, help: help,
					pos: fset.Position(call.Pos()),
				})
				return true
			})
		}
	}
	return regs, nil
}

// collectConsts records single-name string const specs into dst,
// resolving initializer expressions against fallback scopes.
func collectConsts(gd *ast.GenDecl, dst map[string]string, outer map[string]string) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Names) != len(vs.Values) {
			continue
		}
		for i, ident := range vs.Names {
			if v, ok := resolveString(vs.Values[i], dst, outer); ok {
				dst[ident.Name] = v
			}
		}
	}
}

// resolveString evaluates e as a constant string: a literal, an
// identifier bound in one of the scopes (innermost first), or a
// concatenation of resolvable parts.
func resolveString(e ast.Expr, scopes ...map[string]string) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		return s, err == nil
	case *ast.Ident:
		for _, scope := range scopes {
			if scope == nil {
				continue
			}
			if s, ok := scope[v.Name]; ok {
				return s, true
			}
		}
		return "", false
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		l, ok1 := resolveString(v.X, scopes...)
		r, ok2 := resolveString(v.Y, scopes...)
		return l + r, ok1 && ok2
	case *ast.ParenExpr:
		return resolveString(v.X, scopes...)
	}
	return "", false
}
