package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// fixture builds a two-trace dump with a known critical path: the
// slow trace spends 60 of its 100 units in fsync_wait, so the stages
// table must rank fsync_wait first.
func fixture() []telemetry.Trace {
	return []telemetry.Trace{
		{
			ID: 0xabc, Outcome: "insert", DurationNanos: 100, Kept: telemetry.KeptSlow,
			Spans: []telemetry.Span{
				{Stage: telemetry.StageRequest, Parent: telemetry.SpanNone, Start: 0, End: 100},
				{Stage: telemetry.StageInsert, Parent: 0, Start: 10, End: 40,
					Attrs: []telemetry.Attr{{Key: "bytes_written", Num: 512}}},
				{Stage: telemetry.StageWALAppend, Parent: 1, Start: 20, End: 30},
				{Stage: telemetry.StageFsyncWait, Parent: 0, Start: 40, End: 100},
			},
		},
		{
			ID: 0xdef, Outcome: "hit", DurationNanos: 20, Kept: telemetry.KeptSlow,
			Spans: []telemetry.Span{
				{Stage: telemetry.StageRequest, Parent: telemetry.SpanNone, Start: 0, End: 20},
				{Stage: telemetry.StageHit, Parent: 0, Start: 5, End: 15},
			},
		},
	}
}

func TestSelfTimesPartitionRoot(t *testing.T) {
	tr := fixture()[0]
	self := selfTimes(&tr)
	// request: 100 - (30 insert + 60 fsync) = 10; insert: 30 - 10 wal = 20.
	want := []int64{10, 20, 10, 60}
	var sum int64
	for i, got := range self {
		if got != want[i] {
			t.Fatalf("self[%d] (%s) = %d, want %d", i, tr.Spans[i].Stage, got, want[i])
		}
		sum += got
	}
	if sum != tr.DurationNanos {
		t.Fatalf("self times sum to %d, want the trace duration %d", sum, tr.DurationNanos)
	}
}

func TestStagesTableRanksDominantStage(t *testing.T) {
	path := writeDump(t, "dump.json", fixture(), false)
	var out strings.Builder
	if err := runStages([]string{"-in", path}, &out); err != nil {
		t.Fatalf("stages: %v", err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	// Summary, blank line, column header, then rows: the first row
	// must be fsync_wait with a 50% share (60 of 120 total self units).
	if len(lines) < 5 {
		t.Fatalf("short output:\n%s", got)
	}
	first := lines[3]
	if !strings.HasPrefix(first, telemetry.StageFsyncWait) {
		t.Fatalf("top row %q, want %s first\noutput:\n%s", first, telemetry.StageFsyncWait, got)
	}
	if !strings.Contains(first, "50.0%") {
		t.Fatalf("fsync_wait row %q missing 50.0%% share", first)
	}
}

func TestTopListsSlowestFirstWithDominantStage(t *testing.T) {
	path := writeDump(t, "dump.jsonl", fixture(), true)
	var out strings.Builder
	if err := runTop([]string{"-in", path, "-n", "1"}, &out); err != nil {
		t.Fatalf("top: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "0000000000000abc") {
		t.Fatalf("top output missing slowest trace id:\n%s", got)
	}
	if strings.Contains(got, "0000000000000def") {
		t.Fatalf("-n 1 leaked the second trace:\n%s", got)
	}
	if !strings.Contains(got, "fsync_wait (60%)") {
		t.Fatalf("top output missing dominant stage share:\n%s", got)
	}
}

func TestShowRendersSpanTree(t *testing.T) {
	path := writeDump(t, "dump.json", fixture(), false)
	var out strings.Builder
	if err := runShow([]string{"-in", path, "-id", "0000000000000abc"}, &out); err != nil {
		t.Fatalf("show: %v", err)
	}
	got := out.String()
	for _, want := range []string{"outcome=insert", "wal_append", "bytes_written=512"} {
		if !strings.Contains(got, want) {
			t.Fatalf("show output missing %q:\n%s", want, got)
		}
	}
	// wal_append is nested two levels deep: more indented than insert.
	walLine, insertLine := "", ""
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "wal_append") {
			walLine = line
		}
		if strings.Contains(line, "insert") && !strings.Contains(line, "outcome") {
			insertLine = line
		}
	}
	if indent(walLine) <= indent(insertLine) {
		t.Fatalf("wal_append not nested under insert:\n%s", got)
	}
	if err := runShow([]string{"-in", path, "-id", "00000000000000ff"}, &out); err == nil {
		t.Fatalf("show of an absent id succeeded")
	}
}

func TestDecodeTracesBothShapes(t *testing.T) {
	array := writeDump(t, "a.json", fixture(), false)
	jsonl := writeDump(t, "b.jsonl", fixture(), true)
	for _, path := range []string{array, jsonl} {
		got, err := loadTraces(path, "")
		if err != nil {
			t.Fatalf("loadTraces(%s): %v", path, err)
		}
		if len(got) != 2 || got[0].ID != 0xabc || len(got[0].Spans) != 4 {
			t.Fatalf("loadTraces(%s): got %d traces, first %+v", path, len(got), got[0])
		}
	}
	if _, err := loadTraces("", ""); err == nil {
		t.Fatalf("loadTraces with no source succeeded")
	}
	if _, err := loadTraces("x", "http://y"); err == nil {
		t.Fatalf("loadTraces with both sources succeeded")
	}
}

// writeDump writes the traces as a JSON array or JSONL file.
func writeDump(t *testing.T, name string, traces []telemetry.Trace, jsonl bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var b []byte
	if jsonl {
		for _, tr := range traces {
			line, err := json.Marshal(tr)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			b = append(b, line...)
			b = append(b, '\n')
		}
	} else {
		var err error
		b, err = json.MarshalIndent(traces, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func indent(s string) int {
	return len(s) - len(strings.TrimLeft(s, " "))
}
