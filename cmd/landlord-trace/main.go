// Command landlord-trace renders critical-path latency breakdowns from
// the server's span-trace ring:
//
//	landlord-trace stages [-in file | -url base]           per-stage critical-path table
//	landlord-trace top    [-in file | -url base] [-n 10]   slowest traces with their dominant stage
//	landlord-trace show   -id <16-hex> [-in file | -url base]   one trace as an indented span tree
//
// Input is either a file (-in; "-" reads stdin) holding a JSON array of
// traces — the GET /v1/trace payload or a landlord-check -trace-dump
// artifact — or JSONL with one trace per line, or a live server
// (-url http://host:port), which is queried for its full ring.
//
// "Where does the p99 go?" is the stages table: each span's self time
// (its duration minus its children's) is attributed to its stage, so
// the table reads directly as "62% of the retained tail is fsync
// wait". The ring is tail-sampled (slowest plus all errors/sheds), so
// the breakdown describes exactly the traffic worth explaining.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "stages":
		err = runStages(os.Args[2:], os.Stdout)
	case "top":
		err = runTop(os.Args[2:], os.Stdout)
	case "show":
		err = runShow(os.Args[2:], os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "landlord-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: landlord-trace <stages|top|show> [flags]

  stages [-in file | -url base]            per-stage critical-path table over all traces
  top    [-in file | -url base] [-n N]     N slowest traces and their dominant stage
  show   -id <16-hex> [-in file | -url base]   one trace as an indented span tree

  -in accepts a JSON array (GET /v1/trace payload, -trace-dump artifact)
  or JSONL with one trace per line; "-" reads stdin. -url queries a
  live server's trace ring.`)
}

// sourceFlags registers the shared input flags on fs.
func sourceFlags(fs *flag.FlagSet) (in, url *string) {
	in = fs.String("in", "", `trace dump file: JSON array or JSONL ("-" = stdin)`)
	url = fs.String("url", "", "live server base URL (queries GET /v1/trace)")
	return in, url
}

// loadTraces reads traces from the configured source.
func loadTraces(in, url string) ([]telemetry.Trace, error) {
	switch {
	case in != "" && url != "":
		return nil, fmt.Errorf("-in and -url are mutually exclusive")
	case url != "":
		return server.NewClient(url, http.DefaultClient).Traces(0)
	case in == "":
		return nil, fmt.Errorf("need -in or -url")
	}
	var r io.Reader
	if in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return decodeTraces(r)
}

// decodeTraces accepts both dump shapes: a single JSON array (the
// GET /v1/trace payload, a -trace-dump artifact) or JSONL with one
// trace object per line.
func decodeTraces(r io.Reader) ([]telemetry.Trace, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("reading traces: %w", err)
	}
	trimmed := bytes.TrimSpace(b)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty trace input")
	}
	if trimmed[0] == '[' {
		var out []telemetry.Trace
		if err := json.Unmarshal(trimmed, &out); err != nil {
			return nil, fmt.Errorf("decoding trace array: %w", err)
		}
		return out, nil
	}
	var out []telemetry.Trace
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	for {
		var tr telemetry.Trace
		if err := dec.Decode(&tr); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("decoding trace %d: %w", len(out), err)
		}
		out = append(out, tr)
	}
}

// stageAgg accumulates one stage's critical-path contribution.
type stageAgg struct {
	stage string
	count int
	self  int64 // total self time (span duration minus children)
	max   int64 // largest single self time
}

// selfTimes computes each span's self time: its duration minus the
// summed durations of its direct children. Self times sum exactly to
// the root span's duration, so per-stage totals are a true partition
// of where the time went.
func selfTimes(tr *telemetry.Trace) []int64 {
	self := make([]int64, len(tr.Spans))
	for i, sp := range tr.Spans {
		self[i] = sp.End - sp.Start
	}
	for _, sp := range tr.Spans {
		if sp.Parent >= 0 && int(sp.Parent) < len(self) {
			self[sp.Parent] -= sp.End - sp.Start
		}
	}
	for i := range self {
		if self[i] < 0 {
			self[i] = 0
		}
	}
	return self
}

// aggregate folds every trace's self times into per-stage rows, sorted
// by total self time descending.
func aggregate(traces []telemetry.Trace) (rows []stageAgg, total int64) {
	byStage := map[string]*stageAgg{}
	for i := range traces {
		self := selfTimes(&traces[i])
		for j, sp := range traces[i].Spans {
			agg := byStage[sp.Stage]
			if agg == nil {
				agg = &stageAgg{stage: sp.Stage}
				byStage[sp.Stage] = agg
			}
			agg.count++
			agg.self += self[j]
			if self[j] > agg.max {
				agg.max = self[j]
			}
			total += self[j]
		}
	}
	for _, agg := range byStage {
		rows = append(rows, *agg)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].self != rows[j].self {
			return rows[i].self > rows[j].self
		}
		return rows[i].stage < rows[j].stage
	})
	return rows, total
}

func runStages(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stages", flag.ExitOnError)
	in, url := sourceFlags(fs)
	fs.Parse(args)
	traces, err := loadTraces(*in, *url)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no traces in input")
	}
	rows, total := aggregate(traces)
	fmt.Fprintf(w, "%d trace(s), %s total critical-path time\n\n", len(traces), fmtDur(total))
	fmt.Fprintf(w, "%-18s %8s %12s %8s %12s %12s\n", "STAGE", "SPANS", "SELF", "SHARE", "AVG", "MAX")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.self) / float64(total)
		}
		fmt.Fprintf(w, "%-18s %8d %12s %7.1f%% %12s %12s\n",
			r.stage, r.count, fmtDur(r.self), share,
			fmtDur(r.self/int64(r.count)), fmtDur(r.max))
	}
	return nil
}

// dominantStage returns the stage with the largest self time in the
// trace and its share of the trace's total.
func dominantStage(tr *telemetry.Trace) (string, float64) {
	self := selfTimes(tr)
	var total, best int64
	bestStage := ""
	for i, sp := range tr.Spans {
		total += self[i]
		if self[i] > best || (self[i] == best && bestStage == "") {
			best, bestStage = self[i], sp.Stage
		}
	}
	if total == 0 {
		return bestStage, 0
	}
	return bestStage, 100 * float64(best) / float64(total)
}

func runTop(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	in, url := sourceFlags(fs)
	n := fs.Int("n", 10, "number of traces to list")
	fs.Parse(args)
	traces, err := loadTraces(*in, *url)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no traces in input")
	}
	sort.SliceStable(traces, func(i, j int) bool {
		return traces[i].DurationNanos > traces[j].DurationNanos
	})
	if *n > 0 && len(traces) > *n {
		traces = traces[:*n]
	}
	fmt.Fprintf(w, "%-16s %10s %-10s %6s %-6s %s\n", "TRACE", "DURATION", "OUTCOME", "SPANS", "KEPT", "DOMINANT STAGE")
	for i := range traces {
		tr := &traces[i]
		stage, share := dominantStage(tr)
		fmt.Fprintf(w, "%-16s %10s %-10s %6d %-6s %s (%.0f%%)\n",
			tr.ID, fmtDur(tr.DurationNanos), tr.Outcome, len(tr.Spans), tr.Kept, stage, share)
	}
	return nil
}

func runShow(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in, url := sourceFlags(fs)
	id := fs.String("id", "", "trace ID (16 hex digits)")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("show: -id is required")
	}
	want, err := telemetry.ParseTraceID(*id)
	if err != nil {
		return err
	}
	if *url != "" && *in == "" {
		tr, err := server.NewClient(*url, http.DefaultClient).TraceByID(want)
		if err != nil {
			return err
		}
		printTree(w, &tr)
		return nil
	}
	traces, err := loadTraces(*in, *url)
	if err != nil {
		return err
	}
	for i := range traces {
		if traces[i].ID == want {
			printTree(w, &traces[i])
			return nil
		}
	}
	return fmt.Errorf("trace %s not found in %d trace(s)", want, len(traces))
}

// printTree renders one trace as an indented span tree with self
// times and attributes.
func printTree(w io.Writer, tr *telemetry.Trace) {
	fmt.Fprintf(w, "trace %s outcome=%s duration=%s spans=%d kept=%s",
		tr.ID, tr.Outcome, fmtDur(tr.DurationNanos), len(tr.Spans), tr.Kept)
	if tr.RemoteParent != 0 {
		fmt.Fprintf(w, " remote_parent=%d", tr.RemoteParent-1)
	}
	if tr.Err != "" {
		fmt.Fprintf(w, " err=%q", tr.Err)
	}
	fmt.Fprintln(w)

	children := make([][]int, len(tr.Spans))
	for i, sp := range tr.Spans {
		if i == 0 {
			continue
		}
		if sp.Parent >= 0 && int(sp.Parent) < len(tr.Spans) {
			children[sp.Parent] = append(children[sp.Parent], i)
		}
	}
	self := selfTimes(tr)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := tr.Spans[i]
		attrs := ""
		for _, a := range sp.Attrs {
			if a.Str != "" {
				attrs += fmt.Sprintf(" %s=%s", a.Key, a.Str)
			} else {
				attrs += fmt.Sprintf(" %s=%d", a.Key, a.Num)
			}
		}
		fmt.Fprintf(w, "  %s%-*s %10s (self %s)%s\n",
			strings.Repeat("  ", depth), 20-2*depth, sp.Stage,
			fmtDur(sp.End-sp.Start), fmtDur(self[i]), attrs)
		for _, c := range children[i] {
			walk(c, depth+1)
		}
	}
	if len(tr.Spans) > 0 {
		walk(0, 0)
	}
}

// fmtDur renders nanoseconds compactly (µs under 1ms, ms under 10s).
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < 10*time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return d.Truncate(time.Millisecond).String()
	}
}
