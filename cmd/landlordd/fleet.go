// Fleet-mode wiring: -mode master serves the internal/fleet control
// plane (no repository, no cache — it routes /v1/request to registered
// agents by consistent-hashed spec signature); -mode agent runs the
// normal cache daemon and additionally registers with a master,
// heartbeating its image directory so the master's routing and
// placement state stay warm.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/server"
)

// runMaster serves the fleet control plane until SIGINT/SIGTERM. The
// master holds only soft state — membership, ring, directory mirrors —
// all rebuilt from agent re-registration after a restart, so there is
// no state directory, no recovery phase, and readiness is purely "a
// quorum of agents has registered" (fleet_quorum).
func runMaster(site config.Site, drainWindow time.Duration, pprofOn bool) {
	m := fleet.NewMaster(site.FleetMasterConfig())
	stopSweep := m.StartSweeper(site.HeartbeatInterval())
	defer stopSweep()

	mux := http.NewServeMux()
	mux.Handle("/", m.Handler())
	if pprofOn {
		mountPprof(mux)
	}
	httpSrv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", site.Addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("landlordd: listening on %s", ln.Addr())
	log.Printf("landlordd: master control plane (quorum=%d, heartbeat=%v)",
		site.FleetQuorum, site.HeartbeatInterval())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Fatalf("landlordd: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("landlordd: shutdown signal received, draining (up to %v)", drainWindow)
		drainCtx, cancel := context.WithTimeout(context.Background(), drainWindow)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("landlordd: drain incomplete: %v", err)
		}
		for _, mi := range m.MembersNow() {
			log.Printf("landlordd: final member %s state=%s images=%d", mi.ID, mi.State, mi.DirImages)
		}
	}
}

// startFleetAgent joins srv to the configured master's fleet and
// starts the heartbeat loop. The generation is the startup time in
// nanoseconds: monotonically fresh per process, so the master detects
// restarts (new gen) and resets its directory mirror instead of
// trusting a stale one. The returned stop halts the loop and
// deregisters, letting the master route around this agent before its
// listener closes.
func startFleetAgent(site config.Site, srv *server.Server) (stop func()) {
	cfg := site.FleetAgentConfig(uint64(time.Now().UnixNano()))
	ag := fleet.NewAgent(cfg, srv)
	log.Printf("landlordd: agent %q joining fleet at %s (advertise %s, beat every %v)",
		cfg.ID, cfg.MasterURL, cfg.AdvertiseURL, cfg.Interval)
	return ag.Start()
}
