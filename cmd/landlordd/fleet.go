// Fleet-mode wiring: -mode master serves the internal/fleet control
// plane (no repository, no cache — it routes /v1/request to registered
// agents by consistent-hashed spec signature); -mode agent runs the
// normal cache daemon and additionally registers with a master,
// heartbeating its image directory so the master's routing and
// placement state stay warm.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/server"
)

// runMaster serves the fleet control plane until SIGINT/SIGTERM. The
// master holds only soft state — membership, ring, directory mirrors —
// all rebuilt from agent re-registration after a restart, so there is
// no state directory, no recovery phase, and readiness is purely "a
// quorum of agents has registered" (fleet_quorum).
func runMaster(site config.Site, drainWindow time.Duration, pprofOn bool) {
	if site.HAEnabled() && site.StateDir != "" {
		// The folded HA state persists here on every lease-log append.
		if err := os.MkdirAll(site.StateDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
			os.Exit(1)
		}
	}
	m := fleet.NewMaster(site.FleetMasterConfig())
	stopSweep := m.StartSweeper(site.HeartbeatInterval())
	defer stopSweep()
	stopLease := m.StartLeaseLoop()
	defer stopLease()
	if site.HAEnabled() {
		role := "primary"
		if site.StandbyOf != "" {
			role = "standby of " + site.StandbyOf
		}
		log.Printf("landlordd: high availability on (master_id=%s, %s, lease every %v, failover after 2 missed leases)",
			site.MasterID, role, site.LeaseInterval())
	}

	mux := http.NewServeMux()
	mux.Handle("/", m.Handler())
	if pprofOn {
		mountPprof(mux)
	}
	httpSrv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", site.Addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("landlordd: listening on %s", ln.Addr())
	log.Printf("landlordd: master control plane (quorum=%d, heartbeat=%v)",
		site.FleetQuorum, site.HeartbeatInterval())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Fatalf("landlordd: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("landlordd: shutdown signal received, draining (up to %v)", drainWindow)
		drainCtx, cancel := context.WithTimeout(context.Background(), drainWindow)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("landlordd: drain incomplete: %v", err)
		}
		for _, mi := range m.MembersNow() {
			log.Printf("landlordd: final member %s state=%s images=%d", mi.ID, mi.State, mi.DirImages)
		}
	}
}

// newFleetAgent builds the fleet agent riding alongside srv. The
// generation is the startup time in nanoseconds: monotonically fresh
// per process, so the masters detect restarts (new gen) and reset
// their directory mirrors instead of trusting stale ones. The caller
// serves ag.Handler() (the epoch gate that fences superseded masters)
// and starts the beat loop with startFleetAgent once the handler is
// live.
func newFleetAgent(site config.Site, srv *server.Server) *fleet.Agent {
	return fleet.NewAgent(site.FleetAgentConfig(uint64(time.Now().UnixNano())), srv)
}

// startFleetAgent starts the heartbeat loop against every configured
// master. The returned stop halts the loop and deregisters; prefer
// drainFleetAgent on shutdown for the warm variant.
func startFleetAgent(site config.Site, ag *fleet.Agent) (stop func()) {
	masters := site.MasterURLs
	if len(masters) == 0 {
		masters = []string{site.MasterURL}
	}
	cfg := site.FleetAgentConfig(0)
	log.Printf("landlordd: agent %q joining fleet at %v (advertise %s, beat every %v)",
		cfg.ID, masters, cfg.AdvertiseURL, cfg.Interval)
	return ag.Start()
}

// drainFleetAgent leaves the fleet warm: the masters' handoff plan
// routes this agent's resident specs to their rendezvous successors,
// which are pre-warmed before deregistration, so the keyspace this
// agent served stays hot across the departure.
func drainFleetAgent(ag *fleet.Agent, window time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	if err := ag.Drain(ctx); err != nil {
		log.Printf("landlordd: warm drain incomplete: %v", err)
		return
	}
	log.Printf("landlordd: drained: hot specs handed to rendezvous successors")
}
