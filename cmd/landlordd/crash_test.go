package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/server"
	"repro/internal/spec"
)

// buildDaemon compiles the landlordd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "landlordd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and returns its base URL (parsed
// from the "listening on" log line) and the running command.
func startDaemon(t *testing.T, bin, cfgPath string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, "-config", cfgPath, "-stats-interval", "0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	listenRe := regexp.MustCompile(`listening on (\S+)`)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			t.Logf("[daemon] %s", line)
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not log a listen address within 15s")
		return "", nil
	}
}

func waitHealthy(t *testing.T, client *server.Client) {
	t.Helper()
	var last error
	if !check.Poll(15*time.Second, func() bool {
		// Readiness, not liveness: /v1/healthz answers 200 the moment the
		// listener is up, but /v1/readyz keeps 503ing until WAL recovery
		// finishes (and through degraded mode), which is the state these
		// tests must wait out.
		last = client.Ready()
		return last == nil
	}) {
		t.Fatalf("daemon not ready in time: %v", last)
	}
}

// byLastUse is the canonical order for comparing snapshots: each
// request stamps a unique logical-clock value, so last-use order is a
// total order independent of in-memory layout.
func byLastUse(snaps []core.ImageSnapshot) []core.ImageSnapshot {
	out := append([]core.ImageSnapshot(nil), snaps...)
	sort.Slice(out, func(a, b int) bool { return out[a].LastUse < out[b].LastUse })
	return out
}

// TestDaemonSurvivesKill9 is the issue's acceptance scenario: seed the
// daemon with a 500-request stream under fsync=always, kill -9 the
// process, restart it over the same state directory, and require the
// recovered cache — image set, LRU order, and stats — to be identical
// to the pre-kill cache.
func TestDaemonSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary; skipped in -short")
	}
	bin := buildDaemon(t)

	// Small repository shared by both daemon incarnations.
	genCfg := pkggraph.DefaultGenConfig()
	genCfg.CoreFamilies = 2
	genCfg.FrameworkFamilies = 5
	genCfg.LibraryFamilies = 20
	genCfg.ApplicationFamilies = 33
	repo := pkggraph.MustGenerate(genCfg, 42)
	dir := t.TempDir()
	repoFile := filepath.Join(dir, "repo.jsonl")
	if err := repo.SaveFile(repoFile); err != nil {
		t.Fatal(err)
	}

	stateDir := filepath.Join(dir, "state")
	cfgPath := filepath.Join(dir, "site.json")
	cfg := fmt.Sprintf(`{
		"addr": "127.0.0.1:0",
		"alpha": 0.8,
		"repo_file": %q,
		"state_dir": %q,
		"fsync": "always",
		"checkpoint_every_requests": 200
	}`, repoFile, stateDir)
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	base, cmd := startDaemon(t, bin, cfgPath)
	client := server.NewClient(base, nil)
	waitHealthy(t, client)

	// Seeded 500-request stream: random 1-3 package specs, closed
	// server-side, producing hits, merges, inserts, and churn.
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, repo.Len())
	for i := range keys {
		keys[i] = repo.Package(pkggraph.PkgID(i)).Key()
	}
	for i := 0; i < 500; i++ {
		req := make([]string, 1+rng.Intn(3))
		for j := range req {
			req[j] = keys[rng.Intn(len(keys))]
		}
		if _, err := client.Request(req, true); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	wantStats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantSnaps, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Crash: SIGKILL, no drain, no final checkpoint.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart over the same state directory.
	base2, _ := startDaemon(t, bin, cfgPath)
	client2 := server.NewClient(base2, nil)
	waitHealthy(t, client2)

	gotStats, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Errorf("stats after kill -9 + restart:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	gotSnaps, err := client2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSnaps) != len(wantSnaps) {
		t.Fatalf("image count after restart = %d, want %d", len(gotSnaps), len(wantSnaps))
	}
	if got, want := byLastUse(gotSnaps), byLastUse(wantSnaps); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered image set differs from the pre-kill cache:\n got %+v\nwant %+v", got, want)
	}

	// The recovered daemon must still behave identically: a request
	// for an already-cached spec hits.
	hitReq := []string{keys[0]}
	if _, err := client2.Request(hitReq, true); err != nil {
		t.Fatalf("request after recovery: %v", err)
	}
}

// TestDaemonSurvivesKill9UnderLoad kills the daemon while 8 parallel
// clients are mid-stream, then requires the recovered cache to be
// consistent with a prefix of the concurrent execution that covers
// every acknowledged request: under fsync=always the server
// acknowledges only after the group-commit fsync, so an acked request's
// mutations must be in the recovered state even though the kill landed
// with requests in flight.
func TestDaemonSurvivesKill9UnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary; skipped in -short")
	}
	bin := buildDaemon(t)

	genCfg := pkggraph.DefaultGenConfig()
	genCfg.CoreFamilies = 2
	genCfg.FrameworkFamilies = 5
	genCfg.LibraryFamilies = 20
	genCfg.ApplicationFamilies = 33
	repo := pkggraph.MustGenerate(genCfg, 43)
	dir := t.TempDir()
	repoFile := filepath.Join(dir, "repo.jsonl")
	if err := repo.SaveFile(repoFile); err != nil {
		t.Fatal(err)
	}

	// Unbounded capacity and no pruning: images only grow (merges
	// absorb specs, nothing is evicted), so "this spec was served" is
	// permanently visible as "some image contains its packages".
	stateDir := filepath.Join(dir, "state")
	cfgPath := filepath.Join(dir, "site.json")
	cfg := fmt.Sprintf(`{
		"addr": "127.0.0.1:0",
		"alpha": 0.8,
		"repo_file": %q,
		"state_dir": %q,
		"fsync": "always",
		"max_inflight": 4
	}`, repoFile, stateDir)
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	base, cmd := startDaemon(t, bin, cfgPath)
	waitHealthy(t, server.NewClient(base, nil))

	// 8 parallel clients stream pre-closed specs (closure computed
	// client-side, close:false) so the test knows the exact package set
	// each acknowledgement guarantees. Only acked requests are
	// recorded; the kill makes the tail of each stream fail, which is
	// expected.
	const workers = 8
	var acked atomic.Int64
	var killed atomic.Bool
	records := make([][][]string, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 10))
			c := server.NewClient(base, nil)
			for i := 0; i < 5000; i++ {
				ids := make([]pkggraph.PkgID, 1+rng.Intn(3))
				for j := range ids {
					ids[j] = pkggraph.PkgID(rng.Intn(repo.Len()))
				}
				closed := closedKeys(repo, ids)
				if _, err := c.Request(closed, false); err != nil {
					if !killed.Load() {
						t.Errorf("worker %d failed before the kill: %v", g, err)
					}
					return
				}
				records[g] = append(records[g], closed)
				acked.Add(1)
			}
		}(g)
	}

	// Kill mid-stream once enough requests are acknowledged.
	check.Eventually(t, time.Minute, func() bool { return acked.Load() >= 200 },
		"only %d request(s) acknowledged", acked.Load())
	killed.Store(true)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var ackedReqs [][]string
	for _, rs := range records {
		ackedReqs = append(ackedReqs, rs...)
	}
	t.Logf("killed daemon with %d acknowledged request(s)", len(ackedReqs))

	// Restart over the same state directory.
	base2, _ := startDaemon(t, bin, cfgPath)
	client2 := server.NewClient(base2, nil)
	waitHealthy(t, client2)

	gotStats, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	gotSnaps, err := client2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The recovered state is some prefix of the linearized execution
	// that contains at least every acknowledged request (unacked
	// in-flight requests may or may not have made the durable prefix).
	if gotStats.Requests < int64(len(ackedReqs)) {
		t.Errorf("recovered %d request(s), fewer than the %d acknowledged before the kill",
			gotStats.Requests, len(ackedReqs))
	}
	if got := gotStats.Hits + gotStats.Merges + gotStats.Inserts; got != gotStats.Requests {
		t.Errorf("recovered counters do not partition: hits+merges+inserts = %d, requests = %d",
			got, gotStats.Requests)
	}

	// Every acknowledged spec must be covered by a recovered image.
	images := make([]map[string]bool, len(gotSnaps))
	for i, snap := range gotSnaps {
		images[i] = make(map[string]bool, len(snap.Packages))
		for _, key := range snap.Packages {
			images[i][key] = true
		}
	}
	for i, req := range ackedReqs {
		if !coveredBy(req, images) {
			t.Errorf("acked request %d (%v) is not contained in any recovered image", i, req)
		}
	}

	// The recovered daemon still serves: re-sending a covered spec is a
	// hit (its packages are cached by construction).
	res, err := client2.Request(ackedReqs[0], false)
	if err != nil {
		t.Fatalf("request after recovery: %v", err)
	}
	if res.Op != "hit" {
		t.Errorf("covered spec after recovery produced %q, want hit", res.Op)
	}
}

// closedKeys computes a spec's dependency closure client-side and
// renders it as package keys, so the test knows exactly which packages
// an acknowledgement guarantees are cached.
func closedKeys(repo *pkggraph.Repo, ids []pkggraph.PkgID) []string {
	closed := spec.WithClosure(repo, ids)
	keys := make([]string, 0, closed.Len())
	for _, id := range closed.IDs() {
		keys = append(keys, repo.Package(id).Key())
	}
	return keys
}

// coveredBy reports whether some image contains every key of req.
func coveredBy(req []string, images []map[string]bool) bool {
nextImage:
	for _, img := range images {
		for _, key := range req {
			if !img[key] {
				continue nextImage
			}
		}
		return true
	}
	return false
}
