package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/server"
)

// buildDaemon compiles the landlordd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "landlordd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and returns its base URL (parsed
// from the "listening on" log line) and the running command.
func startDaemon(t *testing.T, bin, cfgPath string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, "-config", cfgPath, "-stats-interval", "0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	listenRe := regexp.MustCompile(`listening on (\S+)`)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			t.Logf("[daemon] %s", line)
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not log a listen address within 15s")
		return "", nil
	}
}

func waitHealthy(t *testing.T, client *server.Client) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := client.Healthz() // retries 503 (recovering) internally
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon not healthy in time: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// byLastUse is the canonical order for comparing snapshots: each
// request stamps a unique logical-clock value, so last-use order is a
// total order independent of in-memory layout.
func byLastUse(snaps []core.ImageSnapshot) []core.ImageSnapshot {
	out := append([]core.ImageSnapshot(nil), snaps...)
	sort.Slice(out, func(a, b int) bool { return out[a].LastUse < out[b].LastUse })
	return out
}

// TestDaemonSurvivesKill9 is the issue's acceptance scenario: seed the
// daemon with a 500-request stream under fsync=always, kill -9 the
// process, restart it over the same state directory, and require the
// recovered cache — image set, LRU order, and stats — to be identical
// to the pre-kill cache.
func TestDaemonSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary; skipped in -short")
	}
	bin := buildDaemon(t)

	// Small repository shared by both daemon incarnations.
	genCfg := pkggraph.DefaultGenConfig()
	genCfg.CoreFamilies = 2
	genCfg.FrameworkFamilies = 5
	genCfg.LibraryFamilies = 20
	genCfg.ApplicationFamilies = 33
	repo := pkggraph.MustGenerate(genCfg, 42)
	dir := t.TempDir()
	repoFile := filepath.Join(dir, "repo.jsonl")
	if err := repo.SaveFile(repoFile); err != nil {
		t.Fatal(err)
	}

	stateDir := filepath.Join(dir, "state")
	cfgPath := filepath.Join(dir, "site.json")
	cfg := fmt.Sprintf(`{
		"addr": "127.0.0.1:0",
		"alpha": 0.8,
		"repo_file": %q,
		"state_dir": %q,
		"fsync": "always",
		"checkpoint_every_requests": 200
	}`, repoFile, stateDir)
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	base, cmd := startDaemon(t, bin, cfgPath)
	client := server.NewClient(base, nil)
	waitHealthy(t, client)

	// Seeded 500-request stream: random 1-3 package specs, closed
	// server-side, producing hits, merges, inserts, and churn.
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, repo.Len())
	for i := range keys {
		keys[i] = repo.Package(pkggraph.PkgID(i)).Key()
	}
	for i := 0; i < 500; i++ {
		req := make([]string, 1+rng.Intn(3))
		for j := range req {
			req[j] = keys[rng.Intn(len(keys))]
		}
		if _, err := client.Request(req, true); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	wantStats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantSnaps, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Crash: SIGKILL, no drain, no final checkpoint.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart over the same state directory.
	base2, _ := startDaemon(t, bin, cfgPath)
	client2 := server.NewClient(base2, nil)
	waitHealthy(t, client2)

	gotStats, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Errorf("stats after kill -9 + restart:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	gotSnaps, err := client2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSnaps) != len(wantSnaps) {
		t.Fatalf("image count after restart = %d, want %d", len(gotSnaps), len(wantSnaps))
	}
	if got, want := byLastUse(gotSnaps), byLastUse(wantSnaps); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered image set differs from the pre-kill cache:\n got %+v\nwant %+v", got, want)
	}

	// The recovered daemon must still behave identically: a request
	// for an already-cached spec hits.
	hitReq := []string{keys[0]}
	if _, err := client2.Request(hitReq, true); err != nil {
		t.Fatalf("request after recovery: %v", err)
	}
}
