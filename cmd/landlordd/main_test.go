package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestMaintenanceInterval(t *testing.T) {
	cases := []struct {
		requests int
		want     time.Duration
	}{
		{0, time.Minute},        // disabled schedules still clamp up
		{1, time.Minute},        // sub-minute clamps to the floor
		{999, time.Minute},      // just under one pass/minute
		{1000, time.Minute},     // one pass per minute per thousand requests
		{5000, 5 * time.Minute}, // scales linearly
		{60000, time.Hour},      // exactly the ceiling
		{1 << 30, time.Hour},    // absurd schedules clamp to the ceiling
	}
	for _, c := range cases {
		if got := maintenanceInterval(c.requests); got != c.want {
			t.Errorf("maintenanceInterval(%d) = %v, want %v", c.requests, got, c.want)
		}
	}
}

func TestStatsLogLine(t *testing.T) {
	line := statsLogLine(server.StatsResponse{
		Requests:        12,
		Hits:            7,
		Images:          3,
		TotalData:       1 << 30,
		CacheEfficiency: 0.875,
	})
	for _, want := range []string{"requests=12", "hits=7", "images=3", "cached=1.00GB", "cache_eff=0.875"} {
		if !strings.Contains(line, want) {
			t.Errorf("stats line missing %q: %s", want, line)
		}
	}
}

func TestMountPprof(t *testing.T) {
	mux := http.NewServeMux()
	mountPprof(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline -> %d", resp.StatusCode)
	}
	// The index page must list the standard profiles.
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ -> %d", resp.StatusCode)
	}
}
