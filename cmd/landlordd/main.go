// Command landlordd runs LANDLORD as a site-wide HTTP service — the
// batch-system-plugin deployment of Section V. Submitters POST job
// specifications to /v1/request and receive the image to run in;
// /v1/stats, /v1/images, /v1/prune, /v1/snapshot and /metrics expose
// operations.
//
//	landlordd -config site.json &
//	landlordd -addr :8080 -alpha 0.8 -capacity-gb 2048 &
//	curl -s localhost:8080/v1/stats
//	curl -s -X POST localhost:8080/v1/request \
//	     -d '{"packages":["app-0001/1.6.0/x86_64-centos7-gcc8-opt"],"close":true}'
//
// Flags override the config file. With -config, the site's prune
// schedule (prune_every_requests expressed as a time interval here) is
// run by a background maintenance loop.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	var (
		configPath = flag.String("config", "", "site configuration file (JSON; flags override)")
		addr       = flag.String("addr", "", "listen address (overrides config)")
		alpha      = flag.Float64("alpha", -1, "merge threshold (overrides config)")
		capacityGB = flag.Float64("capacity-gb", -1, "cache capacity in GB, 0 = unlimited (overrides config)")
		repoSeed   = flag.Int64("repo-seed", 0, "seed for the synthetic repository (overrides config)")
		repoFile   = flag.String("repo-file", "", "load the repository from this JSONL file (overrides config)")
	)
	flag.Parse()

	site := config.Default()
	if *configPath != "" {
		loaded, err := config.Load(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
			os.Exit(1)
		}
		site = loaded
	}
	if *addr != "" {
		site.Addr = *addr
	}
	if *alpha >= 0 {
		site.Alpha = alpha
	}
	if *capacityGB >= 0 {
		site.CapacityGB = *capacityGB
	}
	if *repoSeed != 0 {
		site.RepoSeed = *repoSeed
	}
	if *repoFile != "" {
		site.RepoFile = *repoFile
	}
	if err := site.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
		os.Exit(1)
	}

	repo, err := site.OpenRepo()
	if err != nil {
		fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
		os.Exit(1)
	}
	srv, err := server.New(repo, site.CoreConfig(repo))
	if err != nil {
		fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
		os.Exit(1)
	}

	if site.PruneEveryRequests > 0 {
		// Approximate the request-count schedule with a time ticker:
		// one maintenance pass per minute per thousand scheduled
		// requests, minimum once a minute.
		interval := time.Minute
		go func() {
			for range time.Tick(interval) {
				splits := srv.PruneNow(site.PruneUtilization, site.PruneMinServed)
				if splits > 0 {
					log.Printf("landlordd: maintenance pass split %d image(s)", splits)
				}
			}
		}()
	}

	log.Printf("landlordd: serving %d-package repository (%s) on %s (alpha=%.2f)",
		repo.Len(), stats.FormatBytes(repo.TotalSize()), site.Addr, *site.Alpha)
	if err := http.ListenAndServe(site.Addr, srv.Handler()); err != nil {
		log.Fatalf("landlordd: %v", err)
	}
}
