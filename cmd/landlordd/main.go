// Command landlordd runs LANDLORD as a site-wide HTTP service — the
// batch-system-plugin deployment of Section V. Submitters POST job
// specifications to /v1/request and receive the image to run in;
// /v1/stats, /v1/images, /v1/prune, /v1/snapshot, /v1/events and
// /metrics expose operations.
//
//	landlordd -config site.json &
//	landlordd -addr :8080 -alpha 0.8 -capacity-gb 2048 &
//	curl -s localhost:8080/v1/stats
//	curl -s -X POST localhost:8080/v1/request \
//	     -d '{"packages":["app-0001/1.6.0/x86_64-centos7-gcc8-opt"],"close":true}'
//
// Flags override the config file. With -config, the site's prune
// schedule (prune_every_requests expressed as a time interval here) is
// run by a background maintenance loop. -pprof additionally mounts the
// runtime profiler under /debug/pprof/. The daemon drains in-flight
// requests on SIGINT/SIGTERM and logs a final cache snapshot before
// exiting.
//
// With -state-dir (or state_dir in the config), cache state is durable
// (internal/persist): every mutation is write-ahead logged, the state
// is checkpointed on shutdown and on POST /v1/checkpoint, and startup
// recovers the previous state — serving 503 until recovery completes —
// so a crashed or restarted daemon does not re-pay the image build I/O
// its cache already absorbed.
//
// Overload and failure protection (internal/resilience) is config
// driven: shed_rate/shed_burst/shed_queue_depth arm token-bucket +
// queue-depth admission control (429 + Retry-After before the cache
// lock is touched), and degraded_probe_interval_ms schedules the
// self-heal probe that brings a daemon whose WAL has gone sticky back
// from read-only degraded mode. /v1/healthz is pure liveness (always
// 200); /v1/readyz reports readiness and 503s while degraded or
// recovering.
//
// -mode selects the fleet deployment role (internal/fleet):
// "standalone" (default) serves the local cache directly; "master"
// runs only the routing control plane, forwarding /v1/request to
// registered agents by consistent-hashed spec signature; "agent"
// serves the local cache and registers with -master-url, advertising
// -advertise and heartbeating its image directory:
//
//	landlordd -mode master -addr :8080 -quorum 2 &
//	landlordd -mode agent -addr :8081 -master-url http://localhost:8080 \
//	          -advertise http://localhost:8081 &
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/persist"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// maintenanceInterval converts a request-count prune schedule into a
// wall-clock one: one pass per minute per thousand scheduled requests,
// clamped to [1 minute, 1 hour] so misconfigured sites neither spin
// nor starve.
func maintenanceInterval(pruneEveryRequests int) time.Duration {
	d := time.Duration(pruneEveryRequests) * time.Minute / 1000
	if d < time.Minute {
		return time.Minute
	}
	if d > time.Hour {
		return time.Hour
	}
	return d
}

// statsLogLine renders the periodic (and final) cache-utilization
// self-log entry.
func statsLogLine(st server.StatsResponse) string {
	return fmt.Sprintf("requests=%d hits=%d merges=%d inserts=%d deletes=%d splits=%d images=%d cached=%s unique=%s written=%s cache_eff=%.3f container_eff=%.3f",
		st.Requests, st.Hits, st.Merges, st.Inserts, st.Deletes, st.Splits,
		st.Images, stats.FormatBytes(st.TotalData), stats.FormatBytes(st.UniqueData),
		stats.FormatBytes(st.BytesWritten), st.CacheEfficiency, st.ContainerEfficiency)
}

// mountPprof attaches the runtime profiler's handlers to mux. They are
// mounted explicitly (not via the net/http/pprof side-effect import)
// so the service mux — not http.DefaultServeMux — serves them, and
// only when -pprof is set.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func main() {
	var (
		configPath  = flag.String("config", "", "site configuration file (JSON; flags override)")
		addr        = flag.String("addr", "", "listen address (overrides config)")
		alpha       = flag.Float64("alpha", -1, "merge threshold (overrides config)")
		capacityGB  = flag.Float64("capacity-gb", -1, "cache capacity in GB, 0 = unlimited (overrides config)")
		cacheShards = flag.Int("cache-shards", 0, "independently locked cache shards, >= 1 (overrides config)")
		repoSeed    = flag.Int64("repo-seed", 0, "seed for the synthetic repository (overrides config)")
		repoFile    = flag.String("repo-file", "", "load the repository from this JSONL file (overrides config)")
		stateDir    = flag.String("state-dir", "", "durable state directory: WAL + checkpoints (overrides config)")
		pprofOn     = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof/")
		statsEvery  = flag.Duration("stats-interval", 5*time.Minute, "cache-utilization self-log interval (0 disables)")
		drainWindow = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		mode        = flag.String("mode", "", "deployment mode: standalone, master, or agent (overrides config)")
		masterURL   = flag.String("master-url", "", "master base URL for agent mode (overrides config)")
		masterURLs  = flag.String("master-urls", "", "comma-separated master base URLs for an HA fleet, agent mode (overrides config)")
		advertise   = flag.String("advertise", "", "URL the master reaches this agent at, agent mode (overrides config)")
		agentID     = flag.String("agent-id", "", "fleet name for this agent, agent mode (overrides config)")
		quorum      = flag.Int("quorum", -1, "agents required before the master reports ready (overrides config)")
		heartbeatMS = flag.Int("heartbeat-ms", 0, "agent heartbeat cadence in ms (overrides config)")
		masterID    = flag.String("master-id", "", "lease identity enabling master high availability (overrides config)")
		standbyOf   = flag.String("standby-of", "", "primary base URL this master is a warm standby of (overrides config)")
		peerURL     = flag.String("peer-url", "", "standby base URL this primary renews its lease with (overrides config)")
		leaseMS     = flag.Int("lease-ms", 0, "lease renewal cadence in ms for HA masters (overrides config)")
	)
	flag.Parse()

	site := config.Default()
	if *configPath != "" {
		loaded, err := config.Load(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
			os.Exit(1)
		}
		site = loaded
	}
	if *addr != "" {
		site.Addr = *addr
	}
	if *alpha >= 0 {
		site.Alpha = alpha
	}
	if *capacityGB >= 0 {
		site.CapacityGB = *capacityGB
	}
	if *cacheShards != 0 {
		site.CacheShards = cacheShards // Validate rejects counts < 1
	}
	if *repoSeed != 0 {
		site.RepoSeed = *repoSeed
	}
	if *repoFile != "" {
		site.RepoFile = *repoFile
	}
	if *stateDir != "" {
		site.StateDir = *stateDir
	}
	if *mode != "" {
		site.Mode = *mode
	}
	if *masterURL != "" {
		site.MasterURL = *masterURL
	}
	if *masterURLs != "" {
		site.MasterURLs = strings.Split(*masterURLs, ",")
	}
	if *masterID != "" {
		site.MasterID = *masterID
	}
	if *standbyOf != "" {
		site.StandbyOf = *standbyOf
	}
	if *peerURL != "" {
		site.PeerURL = *peerURL
	}
	if *leaseMS > 0 {
		site.LeaseIntervalMS = *leaseMS
	}
	if *advertise != "" {
		site.Advertise = *advertise
	}
	if *agentID != "" {
		site.AgentID = *agentID
	}
	if *quorum >= 0 {
		site.FleetQuorum = *quorum
	}
	if *heartbeatMS > 0 {
		site.HeartbeatIntervalMS = *heartbeatMS
	}
	if err := site.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
		os.Exit(1)
	}

	// Master mode is a different daemon entirely: no repository, no
	// cache, no persistence — just the routing control plane.
	if site.FleetMode() == config.ModeMaster {
		runMaster(site, *drainWindow, *pprofOn)
		return
	}

	repo, err := site.OpenRepo()
	if err != nil {
		fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
		os.Exit(1)
	}

	// Bind and serve 503s immediately; the handler swaps to the real
	// mux once recovery (below) finishes, so restarting daemons are
	// "come back later" instead of connection-refused.
	var handler atomic.Pointer[http.Handler]
	recovering := server.RecoveringHandler()
	handler.Store(&recovering)
	httpSrv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", site.Addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("landlordd: listening on %s", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var srv *server.Server
	var store *persist.Store
	if site.StateDir != "" {
		store, err = persist.Open(site.StateDir, site.PersistOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
			os.Exit(1)
		}
		s, rep, err := server.NewPersistent(repo, site.CoreConfig(repo), store, site.CheckpointEveryRequests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
			os.Exit(1)
		}
		for _, warn := range rep.Warnings {
			log.Printf("landlordd: recovery warning: %s", warn)
		}
		log.Printf("landlordd: recovered state from %s: %s", site.StateDir, rep)
		srv = s
	} else {
		srv, err = server.New(repo, site.CoreConfig(repo))
		if err != nil {
			fmt.Fprintf(os.Stderr, "landlordd: %v\n", err)
			os.Exit(1)
		}
	}

	if site.MaxInflight > 0 {
		srv.SetMaxInflight(site.MaxInflight)
		log.Printf("landlordd: bounding concurrent cache requests at %d (max_inflight)", site.MaxInflight)
	}
	if site.ShedderEnabled() {
		srv.SetAdmission(site.ShedderConfig())
		log.Printf("landlordd: admission control on (shed_rate=%g shed_burst=%d shed_queue_depth=%d)",
			site.ShedRate, site.ShedBurst, site.ShedQueueDepth)
	}
	stopProbe := func() {}
	if store != nil && site.DegradedProbeInterval() > 0 {
		stopProbe = srv.StartDegradedProbe(site.DegradedProbeInterval())
		log.Printf("landlordd: degraded-mode heal probe every %v", site.DegradedProbeInterval())
	}

	// Agent mode: the cache daemon above is unchanged; the fleet agent
	// rides alongside, registering with every master once the handler
	// is live and heartbeating the image directory from then on. The
	// agent's handler wraps the server's with the epoch gate, so
	// forwards from a superseded master are refused instead of applied.
	var fleetAgent *fleet.Agent
	if site.FleetMode() == config.ModeAgent {
		fleetAgent = newFleetAgent(site, srv)
	}

	mux := http.NewServeMux()
	if fleetAgent != nil {
		mux.Handle("/", fleetAgent.Handler())
	} else {
		mux.Handle("/", srv.Handler())
	}
	if *pprofOn {
		mountPprof(mux)
	}
	var live http.Handler = mux
	handler.Store(&live)

	stopFleet := func() {}
	if fleetAgent != nil {
		stopFleet = startFleetAgent(site, fleetAgent)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Runtime metrics (goroutines, heap, GC pauses, uptime) are polled
	// on the maintenance cadence rather than at scrape time, so a slow
	// collector can never stall /metrics. The poller always runs — and
	// on sharded sites the eviction balancer rides the same ticker, so
	// budgets track load even when no prune schedule is configured; the
	// prune-driven maintenance pass below stays config-gated.
	runtimeMetrics := telemetry.NewRuntimeCollector(srv.Registry())
	go func() {
		interval := maintenanceInterval(site.PruneEveryRequests)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				runtimeMetrics.Poll()
				if site.Shards() > 1 {
					if bal := srv.RebalanceNow(); bal.LastFreed > 0 {
						log.Printf("landlordd: rebalance shrank hot shards by %s (pass %d)",
							stats.FormatBytes(bal.LastFreed), bal.Rebalances)
					}
				}
			}
		}
	}()

	if site.PruneEveryRequests > 0 {
		interval := maintenanceInterval(site.PruneEveryRequests)
		log.Printf("landlordd: maintenance pass every %v (prune_every_requests=%d)",
			interval, site.PruneEveryRequests)
		go func() {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					splits := srv.PruneNow(site.PruneUtilization, site.PruneMinServed)
					if splits > 0 {
						log.Printf("landlordd: maintenance pass split %d image(s)", splits)
					}
				}
			}
		}()
	}

	if *statsEvery > 0 {
		go func() {
			ticker := time.NewTicker(*statsEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					log.Printf("landlordd: cache %s", statsLogLine(srv.StatsNow()))
				}
			}
		}()
	}

	log.Printf("landlordd: serving %d-package repository (%s) on %s (alpha=%.2f, cache_shards=%d, pprof=%v)",
		repo.Len(), stats.FormatBytes(repo.TotalSize()), ln.Addr(), *site.Alpha, site.Shards(), *pprofOn)

	select {
	case err := <-serveErr:
		log.Fatalf("landlordd: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("landlordd: shutdown signal received, draining (up to %v)", *drainWindow)
		// Leave the fleet first, warm: the handoff plan pushes this
		// agent's resident specs to its rendezvous successors, then
		// deregistration moves the keyspace to the survivors — all
		// before the listener closes, so no master forwards into a
		// draining daemon and the departing cache's heat survives it.
		if fleetAgent != nil {
			drainFleetAgent(fleetAgent, *drainWindow)
		}
		stopFleet()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainWindow)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("landlordd: drain incomplete: %v", err)
		}
		stopProbe()
		if store != nil {
			// Seal the durable state: checkpoint the drained cache, so
			// the next start recovers instantly from a compact log.
			if info, err := srv.CheckpointNow(); err != nil {
				log.Printf("landlordd: final checkpoint failed (WAL remains authoritative): %v", err)
			} else {
				log.Printf("landlordd: checkpointed %d image(s) as seq %d (%s)",
					info.Images, info.Seq, stats.FormatBytes(info.Bytes))
			}
			if err := store.Close(); err != nil {
				log.Printf("landlordd: closing state store: %v", err)
			}
		}
		log.Printf("landlordd: final %s", statsLogLine(srv.StatsNow()))
	}
}
