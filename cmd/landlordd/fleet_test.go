package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/fleet"
	"repro/internal/pkggraph"
	"repro/internal/server"
)

// reservePort grabs a free loopback port and releases it, so an agent
// can both listen on it and advertise it before binding. The small
// window between close and rebind is benign on loopback in a test.
func reservePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// TestDaemonFleet boots the real binary in all three roles: one
// master (quorum 2) and two agents over one shared repository file.
// The master must 503 readiness until both agents register, then
// serve a request stream by routing to the agents; gracefully
// stopping one agent (SIGTERM → deregister) must shrink the fleet
// without breaking the stream.
func TestDaemonFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary; skipped in -short")
	}
	bin := buildDaemon(t)

	genCfg := pkggraph.DefaultGenConfig()
	genCfg.CoreFamilies = 2
	genCfg.FrameworkFamilies = 5
	genCfg.LibraryFamilies = 20
	genCfg.ApplicationFamilies = 33
	repo := pkggraph.MustGenerate(genCfg, 44)
	dir := t.TempDir()
	repoFile := filepath.Join(dir, "repo.jsonl")
	if err := repo.SaveFile(repoFile); err != nil {
		t.Fatal(err)
	}

	masterCfg := filepath.Join(dir, "master.json")
	if err := os.WriteFile(masterCfg, []byte(`{
		"addr": "127.0.0.1:0",
		"mode": "master",
		"fleet_quorum": 2,
		"heartbeat_interval_ms": 100
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	masterBase, _ := startDaemon(t, bin, masterCfg)

	// Readiness before any agent registers must be 503, not 200: the
	// master can accept connections but has nowhere to route.
	resp, err := http.Get(masterBase + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty master readyz = %d, want 503", resp.StatusCode)
	}

	agentCmds := make(map[string]*os.Process)
	for i := 0; i < 2; i++ {
		port := reservePort(t)
		id := fmt.Sprintf("agent-%d", i)
		cfgPath := filepath.Join(dir, id+".json")
		cfg := fmt.Sprintf(`{
			"addr": "127.0.0.1:%d",
			"mode": "agent",
			"master_url": %q,
			"advertise": "http://127.0.0.1:%d",
			"agent_id": %q,
			"heartbeat_interval_ms": 100,
			"repo_file": %q
		}`, port, masterBase, port, id, repoFile)
		if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
			t.Fatal(err)
		}
		base, cmd := startDaemon(t, bin, cfgPath)
		waitHealthy(t, server.NewClient(base, nil))
		agentCmds[id] = cmd.Process
	}

	// Quorum reached: the master turns ready once both agents register.
	master := server.NewClient(masterBase, nil)
	waitHealthy(t, master)

	members := func() []fleet.MemberInfo {
		var ms []fleet.MemberInfo
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := master.DoCtx(ctx, http.MethodGet, "/fleet/v1/members", nil, &ms); err != nil {
			t.Fatalf("members: %v", err)
		}
		return ms
	}
	if ms := members(); len(ms) != 2 {
		t.Fatalf("fleet members = %+v, want 2", ms)
	}

	// A request stream through the master: every spec must be served by
	// some agent, and repeating a spec must hit the cache it landed on.
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, repo.Len())
	for i := range keys {
		keys[i] = repo.Package(pkggraph.PkgID(i)).Key()
	}
	var reqs [][]string
	for i := 0; i < 60; i++ {
		req := make([]string, 1+rng.Intn(3))
		for j := range req {
			req[j] = keys[rng.Intn(len(keys))]
		}
		if _, err := master.Request(req, true); err != nil {
			t.Fatalf("request %d via master: %v", i, err)
		}
		reqs = append(reqs, req)
	}

	// The gossiped directory mirrors must have caught up with the
	// placements: the master's member view shows cached images.
	check.Eventually(t, 10*time.Second, func() bool {
		total := 0
		for _, mi := range members() {
			total += mi.DirImages
		}
		return total > 0
	}, "master's directory mirror never saw an image")

	// Graceful agent shutdown: SIGTERM deregisters before the listener
	// closes, so the fleet shrinks to one healthy member and the stream
	// keeps working on the survivor.
	if err := agentCmds["agent-1"].Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	check.Eventually(t, 15*time.Second, func() bool {
		ms := members()
		return len(ms) == 1 && ms[0].ID == "agent-0"
	}, "agent-1 never left the fleet: %+v", members())

	for i, req := range reqs[:20] {
		if _, err := master.Request(req, true); err != nil {
			t.Fatalf("request %d after agent shutdown: %v", i, err)
		}
	}
}
