// Command landlord-check drives the deterministic simulation and
// invariant-checking harness (internal/check) from the command line:
//
//	landlord-check sim      -seed 1 [-steps 600]
//	landlord-check soak     -seed 1 [-requests 50000] [-workers 8]
//	landlord-check netchaos -seed 1 [-steps 240] [-trace-dump path]
//	landlord-check tracesim -seed 1 [-steps 48] [-trace-dump path]
//	landlord-check fleetchaos -seed 1 [-steps 240] [-agents 3]
//	landlord-check hachaos  -seed 1 [-steps 200] [-agents 3] [-kill-phase 0] [-trace-dump path]
//	landlord-check chaos    -duration 10m [-seed 0] [-trace-dump path]
//
// sim runs the canonical deterministic suite — two in-memory
// simulations, the sharded-cache suite (per-shard oracles, route and
// budget audits), plus a persistent chaos run with checkpoints, prune
// passes, injected filesystem faults and crash/recovery cycles — under
// one seed. soak hammers one cache from many goroutines with injected
// persist faults (-shards > 1 soaks the sharded core with audited
// rebalances); run the binary built with -race for full effect. netchaos drives a real HTTP server through a
// fault-injecting transport (resets, truncation, latency, blackholes)
// on top of disk faults and crashes, auditing the acked-request,
// shed, and degraded-mode invariants. tracesim runs the deterministic
// span-tracing coverage harness: a serially driven HTTP server whose
// tracer runs on a logical clock, auditing that the retained trace
// dump covers every canonical stage and replays byte-identically.
// fleetchaos boots a real master fronting N in-process agents and
// audits the fleet invariants — zero lost acks across master
// kill/restart cycles and agent partitions, route-around of
// partitioned agents, and bounded key movement under membership churn.
// hachaos boots a primary + standby master pair with epoch-gated
// agents and a WAL read replica, and audits the high-availability
// invariants: two-tick standby promotion, recovered-state
// byte-identity with the dead primary's durable ha-state.json, a
// single acking primary per round, warm drain handoff, and replica
// state equality (-kill-phase rotates the fault schedule; the nightly
// soak sweeps it). chaos loops the whole harness over consecutive
// seeds until the duration expires (the nightly soak).
//
// -trace-dump writes the failing run's tail-sampling trace ring to the
// given path as JSON, so CI can upload where-the-latency-went context
// alongside the reproduction seed.
//
// Every failure prints the seed and the exact `go test` command that
// reproduces it bit-for-bit; the process exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/check"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "sim":
		err = runSim(os.Args[2:])
	case "soak":
		err = runSoak(os.Args[2:])
	case "netchaos":
		err = runNetChaos(os.Args[2:])
	case "tracesim":
		err = runTraceSim(os.Args[2:])
	case "fleetchaos":
		err = runFleetChaos(os.Args[2:])
	case "hachaos":
		err = runHAChaos(os.Args[2:])
	case "chaos":
		err = runChaos(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: landlord-check <sim|soak|netchaos|tracesim|fleetchaos|hachaos|chaos> [flags]

  sim      -seed N [-steps N]               deterministic suite (incl. sharded) + persistent chaos run
  soak     -seed N [-requests N] [-workers N] [-shards N]  concurrent soak with injected persist faults
  netchaos -seed N [-steps N] [-trace-dump P]  HTTP server under network + disk chaos
  tracesim -seed N [-steps N] [-trace-dump P]  deterministic span-trace coverage + replay audit
  fleetchaos -seed N [-steps N] [-agents N]    master/agent fleet under partitions + master kills
  hachaos  -seed N [-steps N] [-agents N] [-kill-phase N] [-trace-dump P]  primary+standby failover, epoch fencing, WAL replica
  chaos    -duration D [-seed N] [-trace-dump P]  loop sim+soak+netchaos+tracesim+fleetchaos+hachaos over consecutive seeds (0 = from clock)`)
}

// suite runs the canonical deterministic schedule for one seed: the
// in-memory suite, then the persistent chaos run in a throwaway
// directory. steps > 0 overrides the chaos run's length.
func suite(seed int64, steps int) error {
	for _, cfg := range check.Suite(seed) {
		rep, f := check.RunSim(cfg)
		if f != nil {
			return f
		}
		report(cfg, rep)
	}
	for _, cfg := range check.ShardSuite(seed) {
		rep, f := check.RunShardSim(cfg)
		if f != nil {
			return f
		}
		fmt.Printf("shardsim seed=%d steps=%d shards=%d alpha=%.2f: hits=%d merges=%d inserts=%d rebalances=%d evicted=%d state=%s\n",
			cfg.Seed, rep.Steps, cfg.Shards, cfg.Alpha,
			rep.Stats.Hits, rep.Stats.Merges, rep.Stats.Inserts,
			rep.Rebalances, rep.Evicted, rep.StateHash[:12])
	}
	dir, err := os.MkdirTemp("", "landlord-check-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := check.ChaosConfig(seed, dir)
	if steps > 0 {
		cfg.Steps = steps
	}
	rep, f := check.RunSim(cfg)
	if f != nil {
		return f
	}
	report(cfg, rep)
	return nil
}

func report(cfg check.SimConfig, rep check.SimReport) {
	fmt.Printf("sim seed=%d steps=%d alpha=%.2f persist=%v: hits=%d merges=%d inserts=%d deletes=%d splits=%d crashes=%d injected=%d state=%s\n",
		cfg.Seed, rep.Steps, cfg.Alpha, cfg.Dir != "",
		rep.Stats.Hits, rep.Stats.Merges, rep.Stats.Inserts, rep.Stats.Deletes,
		rep.Stats.Splits, rep.Crashes, rep.Injected, rep.StateHash[:12])
}

func runSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	steps := fs.Int("steps", 0, "override the chaos run's request count (0 = canonical 600)")
	fs.Parse(args)
	return suite(*seed, *steps)
}

func runSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "soak seed")
	requests := fs.Int("requests", 50000, "total requests across all workers")
	workers := fs.Int("workers", 8, "concurrent request goroutines")
	shards := fs.Int("shards", 1, "cache shards (>1 soaks the sharded core with audited rebalances)")
	fs.Parse(args)
	return soak(*seed, *requests, *workers, *shards)
}

func soak(seed int64, requests, workers, shards int) error {
	dir, err := os.MkdirTemp("", "landlord-soak-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := check.SoakConfig{
		Seed: seed, Requests: requests, Workers: workers, Shards: shards,
		Alpha: 0.6, CapacityFrac: 0.3,
		Dir: dir, Faults: true, MaintainEvery: 200,
	}
	rep, err := check.RunSoak(cfg)
	if err != nil {
		return fmt.Errorf("soak seed=%d shards=%d: %w", seed, shards, err)
	}
	fmt.Printf("soak seed=%d requests=%d workers=%d shards=%d: hits=%d merges=%d splits=%d injected=%d images=%d\n",
		seed, requests, workers, shards, rep.Stats.Hits, rep.Stats.Merges, rep.Stats.Splits,
		rep.Injected, rep.Images)
	return nil
}

// writeTraceDump writes a failure's tail-sampling trace ring to path
// as JSON, so CI uploads latency context alongside the repro seed.
// A failure without a dump (or an empty path) writes nothing.
func writeTraceDump(path string, f *check.Failure) {
	if path == "" || f == nil || len(f.TraceDump) == 0 {
		return
	}
	b, err := json.MarshalIndent(f.TraceDump, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "landlord-check: encoding trace dump: %v\n", err)
		return
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "landlord-check: writing trace dump: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "landlord-check: wrote %d trace(s) to %s\n", len(f.TraceDump), path)
}

func runNetChaos(args []string) error {
	fs := flag.NewFlagSet("netchaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "netchaos seed")
	steps := fs.Int("steps", 0, "override the request count (0 = canonical 240)")
	dump := fs.String("trace-dump", "", "on failure, write the server's trace ring to this path as JSON")
	fs.Parse(args)
	return netchaos(*seed, *steps, *dump)
}

func netchaos(seed int64, steps int, dump string) error {
	dir, err := os.MkdirTemp("", "landlord-netchaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := check.NetChaosDefault(seed, dir)
	if steps > 0 {
		cfg.Steps = steps
	}
	rep, f := check.RunNetChaos(cfg)
	if f != nil {
		writeTraceDump(dump, f)
		return f
	}
	fmt.Printf("netchaos seed=%d steps=%d: acked=%d sheds=%d degraded=%d circuit_fast=%d net_errors=%d net_injected=%d disk_injected=%d crashes=%d heals=%d\n",
		seed, rep.Steps, rep.Acked, rep.Sheds, rep.Degraded, rep.CircuitFast,
		rep.NetErrors, rep.NetInjected, rep.DiskInjected, rep.Crashes, rep.Heals)
	return nil
}

func runTraceSim(args []string) error {
	fs := flag.NewFlagSet("tracesim", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "tracesim seed")
	steps := fs.Int("steps", 0, "override the request count (0 = canonical 48)")
	dump := fs.String("trace-dump", "", "on failure, write the server's trace ring to this path as JSON")
	fs.Parse(args)
	return tracesim(*seed, *steps, *dump)
}

func tracesim(seed int64, steps int, dump string) error {
	dir, err := os.MkdirTemp("", "landlord-tracesim-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := check.TraceSimDefault(seed, dir)
	if steps > 0 {
		cfg.Steps = steps
	}
	rep, f := check.RunTraceSim(cfg)
	if f != nil {
		writeTraceDump(dump, f)
		return f
	}
	fmt.Printf("tracesim seed=%d steps=%d: acked=%d cluster_jobs=%d traces_started=%d kept=%d propagated=%d stages=%d/%d\n",
		seed, rep.Steps, rep.Acked, rep.ClusterJobs, rep.Started, rep.Kept,
		rep.Propagated, len(rep.StagesCovered), len(rep.StagesCovered)+len(rep.MissingStages))
	return nil
}

func runFleetChaos(args []string) error {
	fs := flag.NewFlagSet("fleetchaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "fleetchaos seed")
	steps := fs.Int("steps", 0, "override the request count (0 = canonical 240)")
	agents := fs.Int("agents", 0, "override the fleet size (0 = canonical 3)")
	fs.Parse(args)
	return fleetchaos(*seed, *steps, *agents)
}

func fleetchaos(seed int64, steps, agents int) error {
	cfg := check.FleetChaosDefault(seed)
	if steps > 0 {
		cfg.Steps = steps
	}
	if agents > 0 {
		cfg.Agents = agents
	}
	rep, f := check.RunFleetChaos(cfg)
	if f != nil {
		return f
	}
	fmt.Printf("fleetchaos seed=%d steps=%d agents=%d: acked=%d unavailable=%d sheds=%d errors=%d partitions=%d master_kills=%d key_move=%.3f\n",
		seed, rep.Steps, cfg.Agents, rep.Acked, rep.Unavailable, rep.Sheds, rep.Errors,
		rep.Partitions, rep.MasterKills, rep.KeyMoveFraction)
	return nil
}

func runHAChaos(args []string) error {
	fs := flag.NewFlagSet("hachaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "hachaos seed")
	steps := fs.Int("steps", 0, "override the request count (0 = canonical 200)")
	agents := fs.Int("agents", 0, "override the fleet size (0 = canonical 3)")
	killPhase := fs.Int("kill-phase", 0, "shift the fault schedule by this many steps (the nightly soak rotates it)")
	dump := fs.String("trace-dump", "", "on failure, write the persistent agent's trace ring to this path as JSON")
	fs.Parse(args)
	return hachaos(*seed, *steps, *agents, *killPhase, *dump)
}

func hachaos(seed int64, steps, agents, killPhase int, dump string) error {
	cfg := check.HAChaosDefault(seed)
	if steps > 0 {
		cfg.Steps = steps
	}
	if agents > 0 {
		cfg.Agents = agents
	}
	cfg.KillPhase = killPhase
	rep, f := check.RunHAChaos(cfg)
	if f != nil {
		writeTraceDump(dump, f)
		return f
	}
	fmt.Printf("hachaos seed=%d steps=%d agents=%d kill_phase=%d: acked=%d unavailable=%d kills=%d isolations=%d promotions=%d demotions=%d epoch=%d replica=%d stale_rejects=%d handoff=%d\n",
		seed, rep.Steps, cfg.Agents, killPhase, rep.Acked, rep.Unavailable,
		rep.Kills, rep.Isolations, rep.Promotions, rep.Demotions,
		rep.MaxEpoch, rep.ReplicaRecords, rep.StaleRejects, rep.HandoffSpecs)
	return nil
}

func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "base seed (0 = derived from the clock)")
	duration := fs.Duration("duration", 10*time.Minute, "how long to keep drawing seeds")
	dump := fs.String("trace-dump", "", "on failure, write the failing run's trace ring to this path as JSON")
	fs.Parse(args)
	base := *seed
	if base == 0 {
		base = time.Now().UnixNano() % 1_000_000
	}
	fmt.Printf("chaos base seed %d for %v (reproduce any failure with the printed command)\n", base, *duration)
	deadline := time.Now().Add(*duration)
	iters := 0
	for s := base; time.Now().Before(deadline); s++ {
		fmt.Printf("--- seed %d\n", s)
		if err := suite(s, 0); err != nil {
			return err
		}
		// Rotate the shard count with the seed, so a long chaos run
		// covers the unsharded core and several sharded geometries.
		if err := soak(s, 20000, 8, 1+int(s%4)); err != nil {
			return err
		}
		if err := netchaos(s, 0, *dump); err != nil {
			return err
		}
		if err := tracesim(s, 0, *dump); err != nil {
			return err
		}
		if err := fleetchaos(s, 0, 0); err != nil {
			return err
		}
		// Rotate the HA kill schedule with the seed so the soak covers
		// failovers landing at different points of the request stream.
		if err := hachaos(s, 0, 0, int(s%29), *dump); err != nil {
			return err
		}
		iters++
	}
	fmt.Printf("chaos clean: %d seed(s) starting at %d\n", iters, base)
	return nil
}
