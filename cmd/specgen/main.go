// Command specgen generates container specifications by scanning
// application sources and logs — the paper's automatic
// specification-generation tooling (Section V): Python import
// statements, `module load` directives, and logs from previous
// LANDLORD runs.
//
//	specgen -path ./myanalysis -mapping site.json > job.spec
//
// Without -resolve, discovered tokens are printed one per line. With
// -resolve, tokens are mapped to repository packages (via the optional
// mapping file and/or direct key lookup), dependency-closed, and
// emitted as a specification ready for `landlord -spec`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/pkggraph"
	"repro/internal/specscan"
)

func main() {
	var (
		path        = flag.String("path", "", "file or directory to scan (.py, .sh, .bash, .log)")
		mappingPath = flag.String("mapping", "", "JSON file mapping tokens to package keys")
		resolve     = flag.Bool("resolve", false, "resolve tokens against the repository and emit a closed spec")
		repoSeed    = flag.Int64("repo-seed", 1, "seed for the synthetic repository (with -resolve)")
		repoFile    = flag.String("repo-file", "", "load the repository from this JSONL file (with -resolve)")
	)
	flag.Parse()
	if err := run(*path, *mappingPath, *resolve, *repoSeed, *repoFile); err != nil {
		fmt.Fprintf(os.Stderr, "specgen: %v\n", err)
		os.Exit(1)
	}
}

func run(path, mappingPath string, resolve bool, repoSeed int64, repoFile string) error {
	if path == "" {
		return fmt.Errorf("missing -path; run with -h for usage")
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	var tokens []string
	if info.IsDir() {
		tokens, err = specscan.ScanDir(path)
	} else {
		tokens, err = specscan.ScanFile(path)
	}
	if err != nil {
		return err
	}
	if len(tokens) == 0 {
		return fmt.Errorf("no requirements found under %s", path)
	}

	if !resolve {
		for _, tok := range tokens {
			fmt.Println(tok)
		}
		return nil
	}

	var mapping specscan.Mapping
	if mappingPath != "" {
		data, err := os.ReadFile(mappingPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &mapping); err != nil {
			return fmt.Errorf("parsing mapping %s: %w", mappingPath, err)
		}
	}
	var repo *pkggraph.Repo
	if repoFile != "" {
		repo, err = pkggraph.LoadFile(repoFile)
	} else {
		repo, err = pkggraph.Generate(pkggraph.DefaultGenConfig(), repoSeed)
	}
	if err != nil {
		return err
	}
	s, missing, err := specscan.Resolve(tokens, mapping, repo)
	if err != nil {
		return err
	}
	for _, tok := range missing {
		fmt.Fprintf(os.Stderr, "specgen: warning: unresolved requirement %q\n", tok)
	}
	return s.Write(os.Stdout, repo)
}
