package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pkggraph"
)

func writeSmallRepo(t *testing.T) string {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 5
	cfg.LibraryFamilies = 20
	cfg.ApplicationFamilies = 33
	repo := pkggraph.MustGenerate(cfg, 42)
	path := filepath.Join(t.TempDir(), "repo.jsonl")
	if err := repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMissingPath(t *testing.T) {
	if err := run("", "", false, 1, ""); err == nil {
		t.Fatal("missing -path accepted")
	}
	if err := run("/nonexistent-dir-xyz", "", false, 1, ""); err == nil {
		t.Fatal("nonexistent path accepted")
	}
}

func TestRunScanOnly(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.py"), []byte("import numpy\n"), 0o644)
	if err := run(dir, "", false, 1, ""); err != nil {
		t.Fatalf("scan-only: %v", err)
	}
}

func TestRunNoRequirements(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.py"), []byte("x = 1\n"), 0o644)
	if err := run(dir, "", false, 1, ""); err == nil {
		t.Fatal("empty scan accepted")
	}
}

func TestRunResolveWithMapping(t *testing.T) {
	repoFile := writeSmallRepo(t)
	repo, err := pkggraph.LoadFile(repoFile)
	if err != nil {
		t.Fatal(err)
	}
	key := repo.Package(0).Key()

	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.py"), []byte("import numpy\n"), 0o644)
	mapping := filepath.Join(dir, "map.json")
	os.WriteFile(mapping, []byte(`{"numpy": "`+key+`"}`), 0o644)

	if err := run(dir, mapping, true, 1, repoFile); err != nil {
		t.Fatalf("resolve: %v", err)
	}
}

func TestRunResolveUnresolvable(t *testing.T) {
	repoFile := writeSmallRepo(t)
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.py"), []byte("import mystery\n"), 0o644)
	if err := run(dir, "", true, 1, repoFile); err == nil {
		t.Fatal("fully unresolved scan accepted")
	}
}

func TestRunBadMapping(t *testing.T) {
	repoFile := writeSmallRepo(t)
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.py"), []byte("import numpy\n"), 0o644)
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{broken"), 0o644)
	if err := run(dir, bad, true, 1, repoFile); err == nil {
		t.Fatal("broken mapping accepted")
	}
	if err := run(dir, filepath.Join(dir, "missing.json"), true, 1, repoFile); err == nil {
		t.Fatal("missing mapping accepted")
	}
}

func TestRunSingleFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "job.sh")
	os.WriteFile(file, []byte("module load gcc/8\n"), 0o644)
	if err := run(file, "", false, 1, ""); err != nil {
		t.Fatalf("single file scan: %v", err)
	}
}
