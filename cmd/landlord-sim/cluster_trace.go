package main

import (
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cvmfs"
	"repro/internal/dedup"
	"repro/internal/pkggraph"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// cmdCluster runs the multi-site distributed experiment: one job
// stream spread over several sites (each with its own LANDLORD head
// node and worker pool) under each scheduling policy, reporting head
// I/O, worker transfer volume, and worker-local reuse.
func cmdCluster(repo *pkggraph.Repo, opt *options) error {
	stream, err := workload.Stream(workload.NewDepClosure(repo, opt.seed), opt.uniqueJobs, opt.repeats, opt.seed+0x5eed)
	if err != nil {
		return err
	}
	const nSites, nWorkers = 4, 8
	workerCap := repo.TotalSize() / 4

	fmt.Fprintf(opt.out, "Distributed deployment: %d sites x %d workers, worker scratch %s,\n",
		nSites, nWorkers, stats.FormatBytes(workerCap))
	fmt.Fprintf(opt.out, "head caches %.1fx repo at alpha=%.2f, %d requests\n\n",
		opt.cacheX, opt.alpha, len(stream))

	policies := []cluster.Policy{
		&cluster.RoundRobin{},
		cluster.NewRandomPolicy(opt.seed),
		cluster.Affinity{},
	}
	w := tabw(opt.out)
	fmt.Fprintf(w, "policy\thead writes\tworker transfers\tworker reuse\tsite images\tsite cache eff\t\n")
	for _, pol := range policies {
		var sites []*cluster.Site
		for i := 0; i < nSites; i++ {
			site, err := cluster.NewSite(repo, cluster.SiteConfig{
				Name:    fmt.Sprintf("site-%d", i),
				Workers: nWorkers,
				Core: core.Config{
					Alpha:    opt.alpha,
					Capacity: int64(opt.cacheX * float64(repo.TotalSize())),
					MinHash:  core.DefaultMinHash(),
				},
				WorkerCapacity: workerCap,
			})
			if err != nil {
				return err
			}
			sites = append(sites, site)
		}
		c, err := cluster.New(sites, pol)
		if err != nil {
			return err
		}
		rep, err := c.RunStream(stream)
		if err != nil {
			return err
		}
		var images int
		var eff float64
		for _, sr := range rep.PerSite {
			images += sr.Images
			eff += sr.CacheEfficiency
		}
		eff /= float64(len(rep.PerSite))
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f%%\t%d\t%.1f%%\t\n",
			rep.Policy,
			stats.FormatBytes(rep.HeadBytesWritten),
			stats.FormatBytes(rep.WorkerTransferredBytes),
			rep.WorkerLocalHitRate*100,
			images, eff*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "\naffinity routing keeps repeats at one site, so head and worker caches stay warm\n")
	return nil
}

// cmdTraceGen generates a request stream and writes it as a JSON-lines
// trace for later replay.
func cmdTraceGen(repo *pkggraph.Repo, opt *options) error {
	if opt.traceFile == "" {
		return fmt.Errorf("missing -trace <file>")
	}
	var gen workload.Generator
	if opt.random {
		gen = workload.NewUniformRandom(repo, opt.seed)
	} else {
		g := workload.NewDepClosure(repo, opt.seed)
		if opt.maxInitial > 0 {
			g.MaxInitial = opt.maxInitial
		}
		gen = g
	}
	stream, err := workload.Stream(gen, opt.uniqueJobs, opt.repeats, opt.seed+0x5eed)
	if err != nil {
		return err
	}
	if err := trace.SaveFile(opt.traceFile, repo, stream); err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "wrote %d requests (%d unique x%d) to %s\n",
		len(stream), opt.uniqueJobs, opt.repeats, opt.traceFile)
	return nil
}

// cmdReplay replays a trace file against a fresh manager and prints
// the run summary — the paper's trace-driven simulation entry point.
func cmdReplay(repo *pkggraph.Repo, opt *options) error {
	if opt.traceFile == "" {
		return fmt.Errorf("missing -trace <file>")
	}
	f, err := os.Open(opt.traceFile)
	if err != nil {
		return err
	}
	stream, err := trace.Load(f, repo)
	f.Close()
	if err != nil {
		return err
	}
	if len(stream) == 0 {
		return fmt.Errorf("trace %s is empty", opt.traceFile)
	}
	mgr, err := core.NewManager(repo, core.Config{
		Alpha:    opt.alpha,
		Capacity: int64(opt.cacheX * float64(repo.TotalSize())),
		MinHash:  core.DefaultMinHash(),
	})
	if err != nil {
		return err
	}
	res, err := sim.Replay(mgr, stream, 0)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(opt.out, "replayed %d requests at alpha=%.2f (cache %.1fx repo)\n\n", res.Requests, opt.alpha, opt.cacheX)
	w := tabw(opt.out)
	fmt.Fprintf(w, "hits\tmerges\tinserts\tdeletes\twritten\trequested\timages\tcache eff\tcontainer eff\t\n")
	fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\t%s\t%d\t%.1f%%\t%.1f%%\t\n",
		st.Hits, st.Merges, st.Inserts, st.Deletes,
		stats.FormatBytes(st.BytesWritten), stats.FormatBytes(st.RequestedBytes),
		res.Images, res.CacheEfficiency*100, res.ContainerEfficiency*100)
	return w.Flush()
}

// cmdDrift runs the evolving-workload experiment: a population of
// users whose specifications drift over time, with and without
// periodic image-split passes, quantifying the bloat mechanism of
// Section V and what splitting buys back.
func cmdDrift(repo *pkggraph.Repo, opt *options) error {
	base := sim.DriftParams{
		Repo:       repo,
		Alpha:      opt.alpha,
		CacheBytes: int64(opt.cacheX * float64(repo.TotalSize())),
		Users:      opt.uniqueJobs / 10,
		Requests:   opt.uniqueJobs * opt.repeats,
		MaxInitial: opt.maxInitial,
		Seed:       opt.seed,
		MutateProb: 0.6,
	}
	if base.Users < 1 {
		base.Users = 1
	}
	fmt.Fprintf(opt.out, "Evolving workload: %d users drifting over %d requests (alpha=%.2f, cache %.1fx repo)\n\n",
		base.Users, base.Requests, opt.alpha, opt.cacheX)
	w := tabw(opt.out)
	fmt.Fprintf(w, "mode\thits\tmerges\tinserts\tdeletes\tsplits\tshed\tcached\tcontainer eff\t\n")
	for _, mode := range []struct {
		name  string
		prune bool
	}{{"no pruning", false}, {"prune every 100", true}} {
		p := base
		if mode.prune {
			p.PruneEvery = 100
			p.PruneUtilization = 0.85
			p.PruneMinServed = 3
		}
		res, err := sim.RunDrift(p)
		if err != nil {
			return err
		}
		st := res.Stats
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%.1f%%\t\n",
			mode.name, st.Hits, st.Merges, st.Inserts, st.Deletes, res.Splits,
			stats.FormatBytes(res.SplitsBytes), stats.FormatBytes(res.TotalData),
			res.ContainerEfficiency*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "\nsplitting sheds packages no current job requests, trimming images the\nLRU evictor would never remove because they stay partially hot\n")
	return nil
}

// cmdDedup runs the Section III block-deduplication analysis: the
// duplication a content-addressed store could identify inside a naive
// per-spec image collection (but cannot reclaim for container users)
// versus what LANDLORD actually avoids by merging specifications
// before images exist.
func cmdDedup(repo *pkggraph.Repo, opt *options) error {
	stream, err := workload.Stream(workload.NewDepClosure(repo, opt.seed), opt.uniqueJobs, 1, opt.seed+0x5eed)
	if err != nil {
		return err
	}
	store := cvmfs.NewStore(repo)

	// Naive store: one image per unique specification.
	naive := stream

	// LANDLORD at the configured alpha: the images the cache ends up
	// holding after the same submissions.
	mgr, err := core.NewManager(repo, core.Config{
		Alpha:   opt.alpha,
		MinHash: core.DefaultMinHash(),
	})
	if err != nil {
		return err
	}
	for i, s := range stream {
		if _, err := mgr.Request(s); err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
	}
	var merged []spec.Spec
	for _, img := range mgr.Images() {
		merged = append(merged, img.Spec)
	}

	fmt.Fprintf(opt.out, "Section III: what deduplication could reclaim vs what merging avoids\n")
	fmt.Fprintf(opt.out, "(%d unique specifications; landlord at alpha=%.2f holds %d images)\n\n",
		len(stream), opt.alpha, len(merged))
	w := tabw(opt.out)
	fmt.Fprintf(w, "image set\tgranularity\timages\tlogical\tunique\tduplicates\tratio\t\n")
	for _, set := range []struct {
		name   string
		images []spec.Spec
	}{{"naive per-spec", naive}, {"landlord merged", merged}} {
		for _, g := range []dedup.Granularity{dedup.ByFile, dedup.ByBlock} {
			rep, err := dedup.Analyze(store, set.images, g, 1<<20)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\t%.2fx\t\n",
				set.name, g, rep.Images,
				stats.FormatBytes(rep.LogicalBytes), stats.FormatBytes(rep.UniqueBytes),
				stats.FormatBytes(rep.DuplicateBytes), rep.DuplicationRatio())
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "\na block store can *identify* the naive set's duplicates but container\nusers cannot reclaim them; merging removes them before images are built\n")
	return nil
}

// cmdLatency converts the α sweep's I/O accounting into per-job
// preparation latency — the time framing of the paper's operational
// zone upper bound ("allowing at most a twofold increase in the
// compute and I/O time compared to directly creating the requested
// images").
func cmdLatency(repo *pkggraph.Repo, opt *options) error {
	points, err := sweep(repo, opt, baseParams(repo, opt))
	if err != nil {
		return err
	}
	lat, err := sim.LatencyFromSweep(points, opt.uniqueJobs*opt.repeats, sim.DefaultLatencyModel())
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Preparation latency per job over alpha (write bandwidth 500 MB/s)\n\n")
	w := tabw(opt.out)
	fmt.Fprintf(w, "alpha\tmean prep/job\tdirect prep/job\toverhead\t\n")
	for _, p := range lat {
		marker := ""
		if p.Overhead > 2 {
			marker = "  <- beyond the paper's 2x limit"
		}
		fmt.Fprintf(w, "%.2f\t%.2fs\t%.2fs\t%.2fx%s\t\n",
			p.Alpha, p.MeanPrep.Seconds(), p.DirectPrep.Seconds(), p.Overhead, marker)
	}
	return w.Flush()
}

// cmdCampaign runs the WLCG-style multi-experiment campaign scenario:
// four experiments with weighted submission rates and versioned
// pipeline phases sharing one LANDLORD cache.
func cmdCampaign(repo *pkggraph.Repo, opt *options) error {
	gen, err := campaign.NewGenerator(campaign.Config{
		Repo:           repo,
		Experiments:    campaign.DefaultExperiments(),
		Campaigns:      5,
		MutateFraction: 0.3,
		Seed:           opt.seed,
	})
	if err != nil {
		return err
	}
	jobs := gen.Jobs(opt.uniqueJobs * opt.repeats)
	mgr, err := core.NewManager(repo, core.Config{
		Alpha:    opt.alpha,
		Capacity: int64(opt.cacheX * float64(repo.TotalSize())),
		MinHash:  core.DefaultMinHash(),
	})
	if err != nil {
		return err
	}
	rep, err := campaign.Run(mgr, jobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Multi-experiment campaign: %d jobs, 5 software revisions, alpha=%.2f\n\n",
		rep.Jobs, opt.alpha)
	w := tabw(opt.out)
	fmt.Fprintf(w, "experiment\tjobs\thits\tmerges\tinserts\tcontainer eff\t\n")
	for _, er := range rep.PerExperiment {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.1f%%\t\n",
			er.Name, er.Jobs, er.Hits, er.Merges, er.Inserts, er.MeanContainerEfficiency*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "\ncache: %d images (%d serving multiple experiments), %s stored, %s unique\n",
		rep.Images, rep.SharedImages,
		stats.FormatBytes(rep.TotalData), stats.FormatBytes(rep.UniqueData))
	return nil
}

// cmdZone maps how the operational zone's bounds move with the
// cache:repository ratio — the paper: "there is no general rule for
// the placement of these limits, which depends strongly on the
// performance characteristics of the execution environment".
func cmdZone(repo *pkggraph.Repo, opt *options) error {
	ratios := []float64{1.0, 1.4, 2.0, 5.0}
	fmt.Fprintf(opt.out, "Operational zone vs cache size (cache eff >= 30%%, write amplification <= 2x)\n")
	fmt.Fprintf(opt.out, "(%d unique jobs x%d, medians of %d runs)\n\n", opt.uniqueJobs, opt.repeats, opt.reps)
	w := tabw(opt.out)
	fmt.Fprintf(w, "cache\tzone\tcache eff at 0.75\tcontainer eff at 0.75\t\n")
	for _, ratio := range ratios {
		p := baseParams(repo, opt)
		p.CacheBytes = int64(ratio * float64(repo.TotalSize()))
		points, err := sweep(repo, opt, p)
		if err != nil {
			return err
		}
		lo, hi, ok := sim.OperationalZone(points, 0.30, 2.0)
		zone := "none"
		if ok {
			zone = fmt.Sprintf("[%.2f, %.2f]", lo, hi)
		}
		var at75 sim.SweepPoint
		for _, pt := range points {
			if pt.Alpha == 0.75 {
				at75 = pt
				break
			}
		}
		fmt.Fprintf(w, "%.1fx\t%s\t%.1f%%\t%.1f%%\t\n",
			ratio, zone, at75.CacheEfficiency*100, at75.ContainerEfficiency*100)
	}
	return w.Flush()
}
