package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/telemetry"
)

// testRepo is a scaled-down repository so every command runs in
// milliseconds.
func testRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	return pkggraph.MustGenerate(cfg, 42)
}

// testOptions mirrors the -short flag's scaling plus a tiny rep count.
func testOptions(t *testing.T) (*options, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return &options{
		repoSeed:   42,
		seed:       1,
		uniqueJobs: 30,
		repeats:    2,
		reps:       2,
		cacheX:     1.4,
		alpha:      0.75,
		maxInitial: 8,
		parallel:   2,
		short:      true,
		out:        &buf,
	}, &buf
}

func TestCmdRepo(t *testing.T) {
	opt, buf := testOptions(t)
	if err := cmdRepo(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"packages:", "core", "application", "most depended-upon"} {
		if !strings.Contains(out, want) {
			t.Errorf("repo output missing %q", want)
		}
	}
}

func TestCmdPackages(t *testing.T) {
	opt, buf := testOptions(t)
	repo := testRepo(t)
	if err := cmdPackages(repo, opt); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines < repo.Len() {
		t.Fatalf("packages listed %d lines for %d packages", lines, repo.Len())
	}
}

func TestCmdTable2(t *testing.T) {
	opt, buf := testOptions(t)
	if err := cmdTable2(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, app := range []string{"alice-gen-sim", "atlas-sim", "lhcb-gen-sim"} {
		if !strings.Contains(out, app) {
			t.Errorf("table2 missing %q", app)
		}
	}
}

func TestCmdFig3WithCSV(t *testing.T) {
	opt, buf := testOptions(t)
	opt.csvDir = t.TempDir()
	if err := cmdFig3(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "expansion") {
		t.Error("fig3 output missing expansion column")
	}
	data, err := os.ReadFile(filepath.Join(opt.csvDir, "fig3.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "spec_size,") {
		t.Errorf("bad CSV header: %.40s", data)
	}
}

func TestCmdFig4(t *testing.T) {
	opt, buf := testOptions(t)
	if err := cmdFig4(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(a) total cache operations", "(b) duplication", "(c) cumulative I/O"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 missing %q", want)
		}
	}
}

func TestCmdFig5(t *testing.T) {
	opt, buf := testOptions(t)
	if err := cmdFig5(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "final:") {
		t.Error("fig5 missing final summary")
	}
}

func TestCmdFig5EventsJSONL(t *testing.T) {
	// fig5 -events must emit exactly one well-formed JSONL event per
	// simulated request, through the same openEvents path main uses.
	opt, _ := testOptions(t)
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, closeEvents, err := openEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	opt.tracer = sink
	if err := cmdFig5(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if err := closeEvents(); err != nil {
		t.Fatalf("closing events sink: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	want := opt.uniqueJobs * opt.repeats
	if len(lines) != want {
		t.Fatalf("events file has %d lines, want %d", len(lines), want)
	}
	ops := map[string]int{}
	for i, line := range lines {
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("line %d has seq %d", i+1, ev.Seq)
		}
		if ev.Op != "hit" && ev.Op != "merge" && ev.Op != "insert" {
			t.Fatalf("line %d has op %q", i+1, ev.Op)
		}
		if ev.SpecPackages <= 0 || ev.RequestBytes <= 0 {
			t.Fatalf("line %d lacks spec accounting: %+v", i+1, ev)
		}
		ops[ev.Op]++
	}
	if ops["hit"] == 0 || ops["insert"] == 0 {
		t.Fatalf("event stream lacks op diversity: %v", ops)
	}
}

func TestOpenEventsErrors(t *testing.T) {
	if _, _, err := openEvents(filepath.Join(t.TempDir(), "no", "such", "dir", "f.jsonl")); err == nil {
		t.Error("unwritable events path accepted")
	}
}

func TestCmdFig7(t *testing.T) {
	opt, buf := testOptions(t)
	if err := cmdFig7(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "random cache eff") {
		t.Error("fig7 missing random columns")
	}
}

func TestCmdFig8(t *testing.T) {
	opt, buf := testOptions(t)
	if err := cmdFig8(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "operational zone") &&
		!strings.Contains(buf.String(), "no operational zone") {
		t.Error("fig8 missing zone verdict")
	}
}

func TestCmdBaselines(t *testing.T) {
	opt, buf := testOptions(t)
	if err := cmdBaselines(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"landlord", "naive", "layered", "fullrepo"} {
		if !strings.Contains(out, want) {
			t.Errorf("baselines missing %q", want)
		}
	}
}

func TestCmdCluster(t *testing.T) {
	opt, buf := testOptions(t)
	opt.uniqueJobs = 15
	if err := cmdCluster(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"round-robin", "random", "affinity"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster missing %q", want)
		}
	}
}

func TestCmdDrift(t *testing.T) {
	opt, buf := testOptions(t)
	if err := cmdDrift(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no pruning") {
		t.Error("drift missing comparison rows")
	}
}

func TestCmdTraceGenAndReplay(t *testing.T) {
	opt, buf := testOptions(t)
	repo := testRepo(t)
	if err := cmdTraceGen(repo, opt); err == nil {
		t.Fatal("trace-gen without -trace accepted")
	}
	opt.traceFile = filepath.Join(t.TempDir(), "t.jsonl")
	if err := cmdTraceGen(repo, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 60 requests") {
		t.Errorf("trace-gen output: %s", buf.String())
	}
	buf.Reset()
	if err := cmdReplay(repo, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replayed 60 requests") {
		t.Errorf("replay output: %s", buf.String())
	}
}

func TestCmdReplayErrors(t *testing.T) {
	opt, _ := testOptions(t)
	repo := testRepo(t)
	if err := cmdReplay(repo, opt); err == nil {
		t.Error("replay without -trace accepted")
	}
	opt.traceFile = filepath.Join(t.TempDir(), "missing.jsonl")
	if err := cmdReplay(repo, opt); err == nil {
		t.Error("replay of missing trace accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	opt.traceFile = empty
	if err := cmdReplay(repo, opt); err == nil {
		t.Error("replay of empty trace accepted")
	}
}

func TestLoadRepoFromFile(t *testing.T) {
	repo := testRepo(t)
	path := filepath.Join(t.TempDir(), "repo.jsonl")
	if err := repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	opt, _ := testOptions(t)
	opt.repoFile = path
	loaded, err := loadRepo(opt)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != repo.Len() {
		t.Fatalf("loaded %d packages, want %d", loaded.Len(), repo.Len())
	}
}

func TestCmdFig6(t *testing.T) {
	opt, buf := testOptions(t)
	opt.uniqueJobs = 10
	opt.reps = 1
	if err := cmdFig6(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "efficiency vs cache size") || !strings.Contains(out, "efficiency vs unique job count") {
		t.Error("fig6 missing panels")
	}
}

func TestCmdDedup(t *testing.T) {
	opt, buf := testOptions(t)
	opt.uniqueJobs = 20
	if err := cmdDedup(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "naive per-spec") || !strings.Contains(out, "landlord merged") {
		t.Error("dedup missing comparison rows")
	}
}

func TestCmdLatency(t *testing.T) {
	opt, buf := testOptions(t)
	opt.uniqueJobs = 15
	if err := cmdLatency(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean prep/job") {
		t.Error("latency missing columns")
	}
}

func TestCmdCampaign(t *testing.T) {
	opt, buf := testOptions(t)
	opt.uniqueJobs = 40
	if err := cmdCampaign(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"alice", "atlas", "cms", "lhcb", "serving multiple experiments"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign missing %q", want)
		}
	}
}

func TestCmdZone(t *testing.T) {
	opt, buf := testOptions(t)
	opt.uniqueJobs = 10
	opt.reps = 1
	if err := cmdZone(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cache eff at 0.75") {
		t.Error("zone missing columns")
	}
}

func TestCmdDot(t *testing.T) {
	opt, buf := testOptions(t)
	opt.uniqueJobs = 40
	if err := cmdDot(testRepo(t), opt); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "digraph repo {") {
		t.Error("dot output malformed")
	}
}
