// Command landlord-sim regenerates every table and figure of the
// LANDLORD paper's evaluation (IPDPS 2020, Section VI) from the
// simulation harness. Each subcommand prints the rows/series of one
// paper artifact:
//
//	landlord-sim repo               repository characterization (Section VI)
//	landlord-sim table2             Figure 2:  benchmark applications table
//	landlord-sim fig3               Figure 3:  image size vs selection size
//	landlord-sim fig4               Figure 4:  cache ops / duplication / I/O vs alpha
//	landlord-sim fig5               Figure 5:  single-simulation timeline
//	landlord-sim fig6               Figure 6:  efficiency vs cache size / job count
//	landlord-sim fig7               Figure 7:  dependency vs random workloads
//	landlord-sim fig8               Figure 8:  operational zone
//	landlord-sim baselines          Section III imperfect-solutions comparison
//
// Global flags select the repository (generated deterministically from
// -repo-seed, or loaded from -repo-file) and scale knobs such as -reps.
// Defaults reproduce the paper's configuration: a 9,660-package
// repository, 500 unique jobs repeated 5 times, a cache at the paper's
// 1.4x cache:repository ratio, α swept from 0.40 to 1.00 in steps of
// 0.05, and 20 repetitions per point with medians reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/pkggraph"
	"repro/internal/telemetry"
)

// options carries the global flags shared by all subcommands.
type options struct {
	repoSeed   int64
	repoFile   string
	seed       int64
	uniqueJobs int
	repeats    int
	reps       int
	cacheX     float64 // cache size as a multiple of the repo size
	alpha      float64
	maxInitial int
	parallel   int
	short      bool
	traceFile  string
	random     bool
	csvDir     string
	eventsFile string

	// out receives all experiment output (stdout in the binary,
	// buffers in tests).
	out io.Writer
	// tracer is the request-event hook built from -events (nil when
	// event logging is off). Tests inject their own.
	tracer telemetry.Tracer
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: landlord-sim <command> [flags]

commands:
  repo        print repository characterization
  packages    list every package key
  dot         emit a Graphviz rendering of the dependency graph
  table2      reproduce Figure 2 (benchmark applications)
  fig3        reproduce Figure 3 (image size vs selection size)
  fig4        reproduce Figure 4 (cache behavior over alpha)
  fig5        reproduce Figure 5 (single simulation timeline)
  fig6        reproduce Figure 6 (sensitivity to cache size and job count)
  fig7        reproduce Figure 7 (impact of dependencies)
  fig8        reproduce Figure 8 (limits on efficiency / operational zone)
  baselines   compare LANDLORD with naive / layered / full-repo stores
  cluster     multi-site deployment: scheduling policies vs transfer volume
  trace-gen   generate a request-stream trace file
  replay      replay a trace file against a fresh cache
  drift       evolving workload: image bloat and splitting
  dedup       Section III: identifiable duplication vs merged images
  latency     per-job preparation latency over alpha
  campaign    multi-experiment WLCG-style campaign scenario
  zone        operational-zone bounds vs cache size

run 'landlord-sim <command> -h' for command flags
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	opt := &options{out: os.Stdout}
	fs.Int64Var(&opt.repoSeed, "repo-seed", 1, "seed for the synthetic repository generator")
	fs.StringVar(&opt.repoFile, "repo-file", "", "load the repository from this JSONL file instead of generating it")
	fs.Int64Var(&opt.seed, "seed", 1, "base seed for workloads")
	fs.IntVar(&opt.uniqueJobs, "unique", 500, "unique job specifications per simulation")
	fs.IntVar(&opt.repeats, "repeats", 5, "repetitions of each unique job")
	fs.IntVar(&opt.reps, "reps", 20, "independent simulations per sweep point (median reported)")
	fs.Float64Var(&opt.cacheX, "cache", 1.4, "cache capacity as a multiple of repository size")
	fs.Float64Var(&opt.alpha, "alpha", 0.75, "merge threshold for single-run commands")
	fs.IntVar(&opt.maxInitial, "max-initial", 100, "maximum initial package selection per job")
	fs.IntVar(&opt.parallel, "parallel", runtime.GOMAXPROCS(0), "simulation worker goroutines")
	fs.BoolVar(&opt.short, "short", false, "scale the experiment down for a quick smoke run")
	fs.StringVar(&opt.traceFile, "trace", "", "trace file for trace-gen / replay")
	fs.BoolVar(&opt.random, "random", false, "use the uniform-random workload (trace-gen)")
	fs.StringVar(&opt.csvDir, "csv", "", "also write machine-readable CSV files into this directory")
	fs.StringVar(&opt.eventsFile, "events", "", "write one JSONL telemetry event per simulated request to this file ('-' for stderr)")

	run, ok := commands[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "landlord-sim: unknown command %q\n\n", cmd)
		usage()
	}
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if opt.short {
		opt.uniqueJobs = 100
		opt.repeats = 3
		opt.reps = 3
	}
	var closeEvents func() error
	if opt.eventsFile != "" {
		sink, cf, err := openEvents(opt.eventsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "landlord-sim: %v\n", err)
			os.Exit(1)
		}
		opt.tracer = sink
		closeEvents = cf
	}
	repo, err := loadRepo(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "landlord-sim: %v\n", err)
		os.Exit(1)
	}
	if err := run(repo, opt); err != nil {
		fmt.Fprintf(os.Stderr, "landlord-sim: %s: %v\n", cmd, err)
		os.Exit(1)
	}
	if closeEvents != nil {
		if err := closeEvents(); err != nil {
			fmt.Fprintf(os.Stderr, "landlord-sim: writing events: %v\n", err)
			os.Exit(1)
		}
	}
}

// openEvents opens the -events sink: a JSONL stream to the named file,
// or to stderr for "-" (so event logs don't mix with experiment
// output on stdout). The returned func flushes and reports the first
// write error.
func openEvents(path string) (*telemetry.JSONLSink, func() error, error) {
	if path == "-" {
		sink := telemetry.NewJSONLSink(os.Stderr)
		return sink, sink.Err, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("opening events file: %w", err)
	}
	sink := telemetry.NewJSONLSink(f)
	return sink, func() error {
		if err := sink.Err(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

var commands = map[string]func(*pkggraph.Repo, *options) error{
	"repo":      cmdRepo,
	"packages":  cmdPackages,
	"dot":       cmdDot,
	"table2":    cmdTable2,
	"fig3":      cmdFig3,
	"fig4":      cmdFig4,
	"fig5":      cmdFig5,
	"fig6":      cmdFig6,
	"fig7":      cmdFig7,
	"fig8":      cmdFig8,
	"baselines": cmdBaselines,
	"cluster":   cmdCluster,
	"trace-gen": cmdTraceGen,
	"replay":    cmdReplay,
	"drift":     cmdDrift,
	"dedup":     cmdDedup,
	"latency":   cmdLatency,
	"campaign":  cmdCampaign,
	"zone":      cmdZone,
}

func loadRepo(opt *options) (*pkggraph.Repo, error) {
	if opt.repoFile != "" {
		return pkggraph.LoadFile(opt.repoFile)
	}
	return pkggraph.Generate(pkggraph.DefaultGenConfig(), opt.repoSeed)
}
