package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"repro/internal/cvmfs"
	"repro/internal/hep"
	"repro/internal/pkggraph"
	"repro/internal/report"
	"repro/internal/shrinkwrap"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// tabw returns a tabwriter with the layout used by all tables.
func tabw(out io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
}

// writeCSV emits an experiment's machine-readable output when -csv is
// set.
func writeCSV(opt *options, name string, emit func(w *os.File) error) error {
	if opt.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(opt.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(opt.csvDir, name))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(opt.out, "\n[wrote %s]\n", filepath.Join(opt.csvDir, name))
	return f.Close()
}

// baseParams assembles the standard simulation parameters from flags.
func baseParams(repo *pkggraph.Repo, opt *options) sim.Params {
	return sim.Params{
		Repo:       repo,
		Alpha:      opt.alpha,
		CacheBytes: int64(opt.cacheX * float64(repo.TotalSize())),
		UniqueJobs: opt.uniqueJobs,
		Repeats:    opt.repeats,
		MaxInitial: opt.maxInitial,
		Seed:       opt.seed,
		UseMinHash: true,
		Tracer:     opt.tracer,
	}
}

func cmdRepo(repo *pkggraph.Repo, opt *options) error {
	st := repo.Stats()
	fmt.Fprintf(opt.out, "Repository characterization (Section VI)\n\n")
	fmt.Fprintf(opt.out, "packages:        %d\n", st.Packages)
	fmt.Fprintf(opt.out, "families:        %d\n", st.Families)
	fmt.Fprintf(opt.out, "total size:      %s\n", stats.FormatBytes(st.TotalSize))
	fmt.Fprintf(opt.out, "max dep depth:   %d\n", st.MaxDepth)
	fmt.Fprintf(opt.out, "mean out-degree: %.2f\n", st.MeanOutDeg)
	fmt.Fprintf(opt.out, "mean closure:    %.1f packages\n", st.MeanClosure)
	fmt.Fprintf(opt.out, "max closure:     %d packages\n", st.MaxClosure)
	fmt.Fprintf(opt.out, "core-reachable:  %.1f%% of packages\n", repo.SharedCoreFraction()*100)
	w := tabw(opt.out)
	fmt.Fprintf(w, "\ntier\tpackages\tsize\t\n")
	for _, tier := range []pkggraph.Tier{pkggraph.TierCore, pkggraph.TierFramework, pkggraph.TierLibrary, pkggraph.TierApplication} {
		fmt.Fprintf(w, "%s\t%d\t%s\t\n", tier, st.TierCounts[tier], stats.FormatBytes(st.TierSizes[tier]))
	}
	fmt.Fprintf(w, "\nmost depended-upon packages\tdependents\t\n")
	deps := repo.TransitiveDependents()
	for _, id := range st.TopDependees {
		fmt.Fprintf(w, "%s\t%d\t\n", repo.Package(id).Key(), deps[id])
	}
	return w.Flush()
}

func cmdTable2(repo *pkggraph.Repo, opt *options) error {
	builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())
	rows, err := hep.MeasureAll(builder, repo)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Figure 2: benchmark applications for LHC experiments\n")
	fmt.Fprintf(opt.out, "(paper values are the published reference; measured values are this\nreproduction's Shrinkwrap analogue over the synthetic repository)\n\n")
	w := tabw(opt.out)
	fmt.Fprintf(w, "app\trun time (paper)\tprep (paper)\tprep (measured)\tprep (warm)\tmin image (paper)\tmin image (measured)\tpackages\tfull repo (paper)\t\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%.0fs\t%.0fs\t%s\t%s\t%d\t%s\t\n",
			r.App.Name, r.App.PaperRunTime, r.App.PaperPrepTime,
			r.MeasuredPrep.Seconds(), r.MeasuredWarmPrep.Seconds(),
			stats.FormatBytes(r.App.PaperMinimalImage), stats.FormatBytes(r.MeasuredImage),
			r.MeasuredPackages, stats.FormatBytes(r.App.PaperFullRepo))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "\nsynthetic repository stands in for the per-experiment CVMFS repos: %s\n",
		stats.FormatBytes(repo.TotalSize()))
	return nil
}

func cmdFig3(repo *pkggraph.Repo, opt *options) error {
	maxSpec, step, samples := 1000, 50, 100
	if opt.short {
		maxSpec, step, samples = 400, 100, 20
	}
	points, err := sim.ClosureCurve(repo, maxSpec, step, samples, opt.seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Figure 3: image size vs selection size (medians over %d samples)\n\n", samples)
	w := tabw(opt.out)
	fmt.Fprintf(w, "spec size (pkgs)\tspec-only size (GB)\timage count (pkgs)\timage size (GB)\texpansion\t\n")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.1f\t%.0f\t%.1f\t%.2fx\t\n",
			p.SpecSize, p.SpecOnlyGB, p.ImagePackages, p.ImageGB,
			p.ImagePackages/float64(p.SpecSize))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(opt, "fig3.csv", func(f *os.File) error {
		return report.WriteFig3CSV(f, points)
	})
}

// sweep runs the standard α sweep for the current options.
func sweep(repo *pkggraph.Repo, opt *options, p sim.Params) ([]sim.SweepPoint, error) {
	return sim.SweepAlpha(p, sim.DefaultAlphas(), opt.reps, opt.parallel)
}

func cmdFig4(repo *pkggraph.Repo, opt *options) error {
	points, err := sweep(repo, opt, baseParams(repo, opt))
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Figure 4: cache behavior over a range of alpha values\n")
	fmt.Fprintf(opt.out, "(%d unique jobs x%d, cache %.1fx repo, medians of %d runs)\n\n",
		opt.uniqueJobs, opt.repeats, opt.cacheX, opt.reps)

	fmt.Fprintf(opt.out, "(a) total cache operations\n")
	w := tabw(opt.out)
	fmt.Fprintf(w, "alpha\thits\tinserts\tdeletes\tmerges\t\n")
	for _, p := range points {
		fmt.Fprintf(w, "%.2f\t%.0f\t%.0f\t%.0f\t%.0f\t\n", p.Alpha, p.Hits, p.Inserts, p.Deletes, p.Merges)
	}
	w.Flush()

	fmt.Fprintf(opt.out, "\n(b) duplication of data in cache\n")
	w = tabw(opt.out)
	fmt.Fprintf(w, "alpha\tunique data (GB)\ttotal data (GB)\t\n")
	for _, p := range points {
		fmt.Fprintf(w, "%.2f\t%.0f\t%.0f\t\n", p.Alpha, p.UniqueGB, p.TotalGB)
	}
	w.Flush()

	fmt.Fprintf(opt.out, "\n(c) cumulative I/O overhead\n")
	w = tabw(opt.out)
	fmt.Fprintf(w, "alpha\tactual writes (TB)\trequested writes (TB)\tamplification\t\n")
	for _, p := range points {
		fmt.Fprintf(w, "%.2f\t%.1f\t%.1f\t%.2fx\t\n",
			p.Alpha, p.ActualWriteGB/1024, p.RequestedWriteGB/1024, p.WriteAmplification())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(opt, "fig4.csv", func(f *os.File) error {
		return report.WriteSweepCSV(f, points)
	})
}

func cmdFig5(repo *pkggraph.Repo, opt *options) error {
	p := baseParams(repo, opt)
	total := p.UniqueJobs * p.Repeats
	p.TimelineEvery = total / 50
	if p.TimelineEvery < 1 {
		p.TimelineEvery = 1
	}
	res, err := sim.Run(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Figure 5: behavior of a single simulation\n")
	fmt.Fprintf(opt.out, "(alpha=%.2f, cache=%s, %d unique jobs x%d)\n\n",
		p.Alpha, stats.FormatBytes(p.CacheBytes), p.UniqueJobs, p.Repeats)
	w := tabw(opt.out)
	fmt.Fprintf(w, "requests\thits\tinserts\tdeletes\tmerges\tcached data (GB)\tbytes written (TB)\t\n")
	for _, pt := range res.Timeline {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.0f\t%.2f\t\n",
			pt.Request, pt.Hits, pt.Inserts, pt.Deletes, pt.Merges,
			stats.BytesToGB(pt.CachedBytes), stats.BytesToTB(pt.BytesWritten))
	}
	w.Flush()
	fmt.Fprintf(opt.out, "\nfinal: %d images, cache efficiency %.1f%%, container efficiency %.1f%%\n",
		res.Images, res.CacheEfficiency*100, res.ContainerEfficiency*100)
	return writeCSV(opt, "fig5.csv", func(f *os.File) error {
		return report.WriteTimelineCSV(f, res.Timeline)
	})
}

func cmdFig6(repo *pkggraph.Repo, opt *options) error {
	fmt.Fprintf(opt.out, "Figure 6: effects of simulation parameters on system efficiency\n")
	fmt.Fprintf(opt.out, "(medians of %d runs per point)\n\n", opt.reps)

	fmt.Fprintf(opt.out, "(a,b) efficiency vs cache size (%d unique jobs x%d)\n", opt.uniqueJobs, opt.repeats)
	w := tabw(opt.out)
	fmt.Fprintf(w, "alpha\t")
	cacheSizes := []float64{1, 2, 5, 10}
	for _, x := range cacheSizes {
		fmt.Fprintf(w, "container %.0fx\tcache %.0fx\t", x, x)
	}
	fmt.Fprintf(w, "\n")
	var byCache [][]sim.SweepPoint
	for _, x := range cacheSizes {
		p := baseParams(repo, opt)
		p.CacheBytes = int64(x * float64(repo.TotalSize()))
		points, err := sweep(repo, opt, p)
		if err != nil {
			return err
		}
		byCache = append(byCache, points)
	}
	for i := range byCache[0] {
		fmt.Fprintf(w, "%.2f\t", byCache[0][i].Alpha)
		for c := range cacheSizes {
			fmt.Fprintf(w, "%.1f%%\t%.1f%%\t", byCache[c][i].ContainerEfficiency*100, byCache[c][i].CacheEfficiency*100)
		}
		fmt.Fprintf(w, "\n")
	}
	w.Flush()

	fmt.Fprintf(opt.out, "\n(c,d) efficiency vs unique job count (cache %.1fx repo)\n", opt.cacheX)
	jobCounts := []int{100, 500, 1000}
	if opt.short {
		jobCounts = []int{50, 100, 200}
	}
	w = tabw(opt.out)
	fmt.Fprintf(w, "alpha\t")
	for _, n := range jobCounts {
		fmt.Fprintf(w, "container %dj\tcache %dj\t", n, n)
	}
	fmt.Fprintf(w, "\n")
	var byJobs [][]sim.SweepPoint
	for _, n := range jobCounts {
		p := baseParams(repo, opt)
		p.UniqueJobs = n
		points, err := sweep(repo, opt, p)
		if err != nil {
			return err
		}
		byJobs = append(byJobs, points)
	}
	for i := range byJobs[0] {
		fmt.Fprintf(w, "%.2f\t", byJobs[0][i].Alpha)
		for j := range jobCounts {
			fmt.Fprintf(w, "%.1f%%\t%.1f%%\t", byJobs[j][i].ContainerEfficiency*100, byJobs[j][i].CacheEfficiency*100)
		}
		fmt.Fprintf(w, "\n")
	}
	return w.Flush()
}

func cmdFig7(repo *pkggraph.Repo, opt *options) error {
	deps, err := sweep(repo, opt, baseParams(repo, opt))
	if err != nil {
		return err
	}
	rp := baseParams(repo, opt)
	rp.Workload = sim.WorkloadRandom
	random, err := sweep(repo, opt, rp)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Figure 7: impact of dependencies on duplication\n")
	fmt.Fprintf(opt.out, "(dependency-scheme vs uniform-random images, medians of %d runs)\n\n", opt.reps)
	w := tabw(opt.out)
	fmt.Fprintf(w, "alpha\tdeps cache eff\trandom cache eff\tdeps container eff\trandom container eff\tdeps merges\trandom merges\t\n")
	for i := range deps {
		fmt.Fprintf(w, "%.2f\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.0f\t%.0f\t\n",
			deps[i].Alpha,
			deps[i].CacheEfficiency*100, random[i].CacheEfficiency*100,
			deps[i].ContainerEfficiency*100, random[i].ContainerEfficiency*100,
			deps[i].Merges, random[i].Merges)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeCSV(opt, "fig7_deps.csv", func(f *os.File) error {
		return report.WriteSweepCSV(f, deps)
	}); err != nil {
		return err
	}
	return writeCSV(opt, "fig7_random.csv", func(f *os.File) error {
		return report.WriteSweepCSV(f, random)
	})
}

func cmdFig8(repo *pkggraph.Repo, opt *options) error {
	points, err := sweep(repo, opt, baseParams(repo, opt))
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Figure 8: limits on efficiency\n")
	fmt.Fprintf(opt.out, "(cache %.1fx repo, %d unique jobs x%d, medians of %d runs)\n\n",
		opt.cacheX, opt.uniqueJobs, opt.repeats, opt.reps)
	w := tabw(opt.out)
	fmt.Fprintf(w, "alpha\tcache efficiency\tcontainer efficiency\twrite amplification\t\n")
	for _, p := range points {
		fmt.Fprintf(w, "%.2f\t%.1f%%\t%.1f%%\t%.2fx\t\n",
			p.Alpha, p.CacheEfficiency*100, p.ContainerEfficiency*100, p.WriteAmplification())
	}
	w.Flush()
	lo, hi, ok := sim.OperationalZone(points, 0.30, 2.0)
	if ok {
		fmt.Fprintf(opt.out, "\noperational zone (cache eff >= 30%%, write amplification <= 2.0x): alpha in [%.2f, %.2f]\n", lo, hi)
		fmt.Fprintf(opt.out, "(paper reports a wide operational zone of 0.65 to 0.95)\n")
	} else {
		fmt.Fprintf(opt.out, "\nno operational zone under the default limits\n")
	}
	return writeCSV(opt, "fig8.csv", func(f *os.File) error {
		return report.WriteSweepCSV(f, points)
	})
}

func cmdBaselines(repo *pkggraph.Repo, opt *options) error {
	gen := workload.NewDepClosure(repo, opt.seed)
	if opt.maxInitial > 0 {
		gen.MaxInitial = opt.maxInitial
	}
	stream, err := workload.Stream(gen, opt.uniqueJobs, opt.repeats, opt.seed+0x5eed)
	if err != nil {
		return err
	}
	results, err := sim.RunBaselines(repo, stream, opt.alpha, int64(opt.cacheX*float64(repo.TotalSize())))
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.out, "Section III: imperfect solutions vs LANDLORD\n")
	fmt.Fprintf(opt.out, "(%d requests: %d unique jobs x%d, cache %.1fx repo)\n\n",
		len(stream), opt.uniqueJobs, opt.repeats, opt.cacheX)
	w := tabw(opt.out)
	fmt.Fprintf(w, "store\timages\tstored\tunique\tstorage eff\twritten\ttransferred\thits\t\n")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%.1f%%\t%s\t%s\t%d\t\n",
			r.Name, r.Images, stats.FormatBytes(r.StoredBytes), stats.FormatBytes(r.UniqueBytes),
			r.StorageEfficiency()*100, stats.FormatBytes(r.BytesWritten),
			stats.FormatBytes(r.TransferredBytes), r.Hits)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(opt, "baselines.csv", func(f *os.File) error {
		return report.WriteBaselinesCSV(f, results)
	})
}

// cmdPackages lists every package key, one per line, so users can
// compose specification files (and scripts can grep for packages).
func cmdPackages(repo *pkggraph.Repo, opt *options) error {
	w := tabw(opt.out)
	fmt.Fprintf(w, "key\ttier\tsize\tdeps\t\n")
	for i := 0; i < repo.Len(); i++ {
		p := repo.Package(pkggraph.PkgID(i))
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t\n", p.Key(), p.Tier, stats.FormatBytes(p.Size), len(p.Deps))
	}
	return w.Flush()
}

// cmdDot emits a Graphviz DOT rendering of (a prefix of) the
// dependency graph, for visualizing the hierarchical structure the
// merging strategy exploits.
func cmdDot(repo *pkggraph.Repo, opt *options) error {
	n := opt.uniqueJobs // reuse the -unique flag as the node budget
	if n <= 0 || n > 500 {
		n = 150
	}
	return repo.WriteDOT(opt.out, n)
}
