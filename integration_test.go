// End-to-end integration: one scenario exercising the whole stack the
// way a site would — repository on disk, specs derived from sources,
// the HTTP service fronting the cache, Shrinkwrap materialization,
// job logs feeding the next generation of specs, and a trace replay
// reproducing the same cache decisions.
package repro

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/cvmfs"
	"repro/internal/pkggraph"
	"repro/internal/server"
	"repro/internal/shrinkwrap"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/specscan"
	"repro/internal/trace"
	"repro/internal/workload"
)

func integrationRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	// Small packages keep the bundle materialization step (which
	// hashes every synthetic content byte) fast.
	cfg.MedianPkgBytes = 64 << 10
	return pkggraph.MustGenerate(cfg, 2026)
}

// TestEndToEndSiteLifecycle drives the full pipeline:
//
//	repo file -> spec scan -> HTTP service -> shrinkwrap bundle ->
//	batch logs -> derived specs -> trace replay.
func TestEndToEndSiteLifecycle(t *testing.T) {
	dir := t.TempDir()

	// 1. Persist and reload the repository, as a site deployment would.
	repoPath := filepath.Join(dir, "repo.jsonl")
	if err := integrationRepo(t).SaveFile(repoPath); err != nil {
		t.Fatal(err)
	}
	repo, err := pkggraph.LoadFile(repoPath)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Derive a job spec from an analysis project via specscan.
	project := filepath.Join(dir, "analysis")
	os.MkdirAll(project, 0o755)
	os.WriteFile(filepath.Join(project, "driver.py"), []byte("import numpy\nimport uproot\n"), 0o644)
	tokens, err := specscan.ScanDir(project)
	if err != nil {
		t.Fatal(err)
	}
	mapping := specscan.Mapping{
		"numpy":  repo.Package(repo.FamilyVersions("library-0004")[3]).Key(),
		"uproot": repo.Package(repo.FamilyVersions("library-0007")[3]).Key(),
	}
	jobSpec, missing, err := specscan.Resolve(tokens, mapping, repo)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("unresolved: %v", missing)
	}

	// 3. Run the site service over HTTP and submit through the client.
	srv, err := server.New(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := server.NewClient(ts.URL, ts.Client())
	var keys []string
	for _, id := range jobSpec.IDs() {
		keys = append(keys, repo.Package(id).Key())
	}
	res1, err := client.Request(keys, false)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Op != "insert" {
		t.Fatalf("first submission op = %s", res1.Op)
	}
	res2, err := client.Request(keys, false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Op != "hit" || res2.ImageID != res1.ImageID {
		t.Fatalf("repeat submission: %+v", res2)
	}

	// 4. Materialize the image to a verified on-disk bundle.
	builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())
	bundlePath := filepath.Join(dir, "image.llimg")
	man, err := builder.PackFile(bundlePath, jobSpec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shrinkwrap.UnpackFile(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bytes != man.Bytes {
		t.Fatalf("bundle round trip: %d vs %d bytes", got.Bytes, man.Bytes)
	}

	// 5. Run a batch generation whose logs seed the next generation.
	mgr := core.MustNewManager(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
	sys, err := batch.NewSystem(repo, mgr, filepath.Join(dir, "logs"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Submit(batch.Job{Name: "analysis-v1", Spec: jobSpec})
	recs, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	derived, err := batch.DeriveSpec(recs[0].LogPath, repo)
	if err != nil {
		t.Fatal(err)
	}
	if !derived.Equal(jobSpec) {
		t.Fatal("log-derived spec differs from the submitted one")
	}

	// 6. Record a trace of a workload stream and replay it twice:
	// identical decisions both times.
	stream, err := workload.Stream(workload.NewDepClosure(repo, 9), 15, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	stream = append([]spec.Spec{jobSpec}, stream...)
	tracePath := filepath.Join(dir, "jobs.trace")
	if err := trace.SaveFile(tracePath, repo, stream); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadFile(tracePath, repo)
	if err != nil {
		t.Fatal(err)
	}
	run := func() sim.Result {
		m := core.MustNewManager(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
		res, err := sim.Replay(m, loaded, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats != b.Stats || a.TotalData != b.TotalData {
		t.Fatal("trace replay not deterministic")
	}
	if a.Stats.Hits == 0 {
		t.Fatal("replay with repeats produced no hits")
	}
}
